// Package plan lowers analyzed (and possibly provenance-rewritten) query
// trees to physical executor trees. It performs the optimizations the
// paper relies on PostgreSQL for (Fig. 5 "Planer"): WHERE-conjunct
// extraction and pushdown, greedy equi-join ordering over implicit cross
// products, hash-join selection (including null-safe keys for the
// rewriter's join-back conditions), and aggregate/set-operation/sort
// planning.
package plan

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/eval"
	"perm/internal/exec"
	"perm/internal/mem"
	"perm/internal/obs"
	"perm/internal/spill"
	"perm/internal/types"
	"perm/internal/vector"
	"perm/internal/vexec"
)

// Planner plans query trees against a catalog.
type Planner struct {
	cat         *catalog.Catalog
	vectorized  bool
	budget      *mem.Budget
	spillDir    string
	parallelism int
	activity    *obs.ActiveQuery
}

// New returns a planner with the vectorized lowering path enabled.
func New(cat *catalog.Catalog) *Planner { return &Planner{cat: cat, vectorized: true} }

// SetVectorized toggles the vectorized lowering path (on by default).
// When off, every plan subtree lowers to row-at-a-time operators.
func (p *Planner) SetVectorized(on bool) *Planner {
	p.vectorized = on
	return p
}

// SetResources attaches the session memory budget and spill directory;
// every materializing operator the planner builds takes a reservation
// against the budget and spills to dir under pressure. A nil budget
// disables accounting (operators stay fully in memory).
func (p *Planner) SetResources(budget *mem.Budget, dir string) *Planner {
	p.budget = budget
	p.spillDir = dir
	return p
}

// SetActivity attaches the running query's active-query record: every
// scan the planner builds polls it for cooperative cancellation, and
// parallel segments report morsel progress to it. nil (the default)
// plans an uncancellable tree — EXPLAIN and tests use that.
func (p *Planner) SetActivity(aq *obs.ActiveQuery) *Planner {
	p.activity = aq
	return p
}

// spillRes opens one operator's spill resources against the session
// budget.
func (p *Planner) spillRes(op string) spill.Resources {
	if p.budget == nil {
		return spill.Resources{}
	}
	return spill.Resources{Res: p.budget.Reserve(op), Dir: p.spillDir}
}

// Plan lowers a query tree to an executable node.
func (p *Planner) Plan(q *algebra.Query) (exec.Node, error) {
	pl, err := p.planQuery(q)
	if err != nil {
		return nil, err
	}
	if p.parallelism > 1 && pl.vnode != nil {
		p.parallelize(q, pl)
	}
	return pl.node, nil
}

// planned is a plan fragment: an executor node plus the layout of its
// output row and a cardinality estimate for join ordering.
//
// When the whole fragment is vectorized, vnode holds the batch operator
// tree and node is the same tree behind a batch→row adapter, so row
// operators can always consume the fragment. Operators that stay on the
// row engine clear vnode for everything above them.
type planned struct {
	node  exec.Node
	vnode vexec.Node
	// rowScan lazily builds the row-engine scan for a fragment that is
	// still a bare columnar scan, so a row-only consumer can take the
	// heap rows directly instead of boxing every batch lane (demotion).
	rowScan func() exec.Node
	// layout maps range-table index → offset of that entry's columns in
	// the output row.
	layout map[int]int
	// kinds of the output row columns, in order.
	kinds []types.Kind
	// cols traces each output column to its base-table origin, parallel
	// to kinds (nil = nothing known). See colInfo.
	cols []colInfo
	// rts is the set of range-table entries contained in this fragment.
	rts map[int]bool
	est float64
}

// colInfo is the per-column provenance of a fragment's output used by the
// cost model and by runtime-filter pushdown. stats points at the base
// column's statistics sketch (selectivity and join-cardinality
// estimates); scan/scanCol identify the columnar scan the value passes
// through unchanged, which is where a vectorized hash join may attach a
// runtime filter on this column. Both are best-effort: zero values just
// disable the respective optimization. scan is only propagated along
// paths where pruning source rows whose value cannot satisfy a downstream
// inner-join key is invisible (it is cleared across aggregation, set
// operations, limits and the null-producing side of outer joins).
type colInfo struct {
	scan    *vexec.ColScan
	scanCol int
	stats   *catalog.ColStats
}

// fragCols returns the fragment's column infos, materializing an empty
// slice of the right width when nothing is known.
func fragCols(pl *planned) []colInfo {
	if pl.cols != nil {
		return pl.cols
	}
	return make([]colInfo, len(pl.kinds))
}

// clearScans returns a copy of the column infos with the runtime-filter
// attachment points removed (statistics are kept).
func clearScans(cols []colInfo) []colInfo {
	out := append([]colInfo(nil), cols...)
	for i := range out {
		out[i].scan = nil
	}
	return out
}

func (p *Planner) planQuery(q *algebra.Query) (*planned, error) {
	if q.IsSetOp() {
		return p.planSetOp(q)
	}
	return p.planPlain(q)
}

// ---------------------------------------------------------------------------
// Vectorized lowering helpers

// setVNode marks a fragment vectorized: its row node becomes the same
// tree behind a batch→row adapter.
func (p *Planner) setVNode(pl *planned, vn vexec.Node) {
	pl.vnode = vn
	pl.node = vexec.NewRowSource(vn)
}

// setEstNode records a cardinality estimate on a physical operator (both
// engines embed obs.Card). Estimates below one row are annotated as one:
// the planner's fractional bookkeeping floors (0.1) are meaningful for
// cost comparison but "less than one row" is what they mean as output.
func setEstNode(n any, est float64) {
	if n == nil {
		return
	}
	if est < 1 {
		est = 1
	}
	if c, ok := n.(interface{ SetEstRows(float64) }); ok {
		c.SetEstRows(est)
	}
}

// setFragEst records est as the fragment's estimated output cardinality,
// both in the planner's bookkeeping (join ordering, build-side choice)
// and on the fragment's physical root — including the batch→row adapter
// when the fragment is vectorized — for EXPLAIN ANALYZE's cardinality
// feedback.
func setFragEst(pl *planned, est float64) {
	pl.est = est
	setEstNode(pl.vnode, est)
	setEstNode(pl.node, est)
}

// demote reverts a fragment that is still a bare columnar scan to the
// row-engine scan. The adapter over a bare scan only boxes rows the heap
// already stores, so a row-only consumer is strictly better off with the
// row snapshot; once the fragment carries vectorized filters, joins or
// aggregation, adapting is worthwhile and demote leaves it alone.
func demote(pl *planned) {
	if pl.vnode == nil || pl.rowScan == nil {
		return
	}
	if _, ok := pl.vnode.(*vexec.ColScan); ok {
		pl.node = pl.rowScan()
		pl.vnode = nil
		setEstNode(pl.node, pl.est)
	}
}

// attachFilter adds a filter for e on top of the fragment, staying
// vectorized when the predicate compiles for the batch engine and
// falling back to a row filter (over the fragment's adapter) otherwise.
// The fragment's cardinality estimate is scaled by the predicate's
// estimated selectivity.
func (p *Planner) attachFilter(pl *planned, e algebra.Expr) error {
	if e == nil {
		return nil
	}
	binder := &rowBinder{p: p, layout: pl.layout}
	est := pl.est * p.selectivity(e, pl)
	if est < 0.1 {
		est = 0.1
	}
	if pl.vnode != nil {
		if ve, err := vexec.CompileExpr(e, binder); err == nil && ve.Kind() == types.KindBool {
			p.setVNode(pl, vexec.NewFilter(pl.vnode, ve))
			setFragEst(pl, est)
			return nil
		}
	}
	demote(pl)
	pred, err := eval.Compile(e, binder)
	if err != nil {
		return err
	}
	pl.vnode = nil
	pl.node = exec.NewFilter(pl.node, pred)
	setFragEst(pl, est)
	return nil
}

// ---------------------------------------------------------------------------
// Set operations

func (p *Planner) planSetOp(q *algebra.Query) (*planned, error) {
	branches := make(map[int]*planned)
	for rt, rte := range q.RangeTable {
		sub, err := p.planQuery(rte.Subquery)
		if err != nil {
			return nil, err
		}
		branches[rt] = sub
	}
	pl, err := p.foldSetOp(q.SetOp, branches)
	if err != nil {
		return nil, err
	}
	est := pl.est
	node, vnode, err := p.applySortLimit(q, pl.node, pl.vnode, len(q.TargetList), est)
	if err != nil {
		return nil, err
	}
	if c, ok := q.Limit.(*algebra.Const); ok && !c.Val.Null && float64(c.Val.I) < est {
		est = float64(c.Val.I)
	}
	schema := q.Schema()
	return &planned{node: node, vnode: vnode, kinds: schema.Kinds(), est: est}, nil
}

func (p *Planner) foldSetOp(item algebra.SetOpItem, branches map[int]*planned) (*planned, error) {
	switch n := item.(type) {
	case *algebra.SetOpLeaf:
		return branches[n.RT], nil
	case *algebra.SetOpNode:
		left, err := p.foldSetOp(n.Left, branches)
		if err != nil {
			return nil, err
		}
		right, err := p.foldSetOp(n.Right, branches)
		if err != nil {
			return nil, err
		}
		var kind exec.SetOpKind
		switch n.Op {
		case algebra.SetUnion:
			kind = exec.Union
		case algebra.SetIntersect:
			kind = exec.Intersect
		case algebra.SetExcept:
			kind = exec.Except
		}
		out := &planned{kinds: left.kinds, est: left.est + right.est}
		// The vectorized set operation requires identical column kinds on
		// both branches (its stored columns are typed after the left
		// branch); mismatched branches stay on the row engine, whose boxed
		// rows compare across kinds dynamically.
		if p.vectorized && left.vnode != nil && right.vnode != nil &&
			kindsMatch(left.kinds, right.kinds) {
			vso := vexec.NewVecSetOp(left.vnode, right.vnode, kind, n.All)
			vso.Spill = p.spillRes("setop")
			p.setVNode(out, vso)
			setFragEst(out, out.est)
			return out, nil
		}
		demote(left)
		demote(right)
		out.node = exec.NewSetOp(left.node, right.node, kind, n.All)
		setFragEst(out, out.est)
		return out, nil
	default:
		return nil, fmt.Errorf("plan: unknown set operation item %T", item)
	}
}

func kindsMatch(a, b []types.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Plain queries

func (p *Planner) planPlain(q *algebra.Query) (*planned, error) {
	// 1. FROM clause: plan items and join them, distributing WHERE
	// conjuncts.
	input, err := p.planFrom(q)
	if err != nil {
		return nil, err
	}

	// 2. Aggregation or plain projection. Both stay vectorized when the
	// input fragment is and every expression compiles for the batch
	// engine; otherwise the fragment drops to the row engine here.
	var node exec.Node
	var vnode vexec.Node
	var outCols []colInfo
	var outWidth = len(q.TargetList)
	est := input.est
	if q.HasAggs {
		est = p.aggEstimate(q, input)
		node, vnode, err = p.planAggregation(q, input, est)
		if err != nil {
			return nil, err
		}
	} else {
		exprs := make([]algebra.Expr, len(q.TargetList))
		for i, te := range q.TargetList {
			exprs[i] = te.Expr
		}
		// Hidden sort columns for ORDER BY expressions that are not plain
		// output references.
		extraSort := p.extraSortExprs(q)
		exprs = append(exprs, extraSort...)
		if input.vnode != nil {
			if ves, err := vexec.CompileExprs(exprs, &rowBinder{p: p, layout: input.layout}); err == nil {
				vnode = vexec.NewProject(input.vnode, ves)
				node = vexec.NewRowSource(vnode)
				setEstNode(vnode, est)
				setEstNode(node, est)
			}
		}
		if node == nil {
			demote(input)
			binder := &rowBinder{p: p, layout: input.layout}
			fns, err := eval.CompileAll(exprs, binder)
			if err != nil {
				return nil, err
			}
			node = exec.NewProject(input.node, fns)
			setEstNode(node, est)
		}
		// Column provenance passes through the projection wherever an
		// output expression is a bare column reference.
		outCols = make([]colInfo, outWidth)
		inCols := fragCols(input)
		for i := 0; i < outWidth; i++ {
			if v, ok := exprs[i].(*algebra.Var); ok && v.RT >= 0 {
				if off, ok := input.layout[v.RT]; ok && off+v.Col < len(inCols) {
					outCols[i] = inCols[off+v.Col]
				}
			}
		}
	}

	// 3. DISTINCT. No distinct-count statistics exist over full output
	// rows, so the duplicate elimination inherits its input estimate (an
	// upper bound; the q-error feedback shows how loose it was).
	if q.Distinct {
		if vnode != nil {
			vd := vexec.NewVecDistinct(vnode)
			vd.Spill = p.spillRes("distinct")
			vnode = vd
			node = vexec.NewRowSource(vnode)
			setEstNode(vnode, est)
			setEstNode(node, est)
		} else {
			node = exec.NewDistinct(node)
			setEstNode(node, est)
		}
	}

	// 4. ORDER BY / LIMIT / OFFSET (strips hidden sort columns).
	node, vnode, err = p.applySortLimit(q, node, vnode, outWidth, est)
	if err != nil {
		return nil, err
	}
	if q.Limit != nil || q.Offset != nil {
		// Which rows survive a limit depends on rows pruning would
		// remove, so runtime filters must not reach through it.
		outCols = clearScans(outCols)
		if c, ok := q.Limit.(*algebra.Const); ok && !c.Val.Null && float64(c.Val.I) < est {
			est = float64(c.Val.I)
		}
	}

	schema := q.Schema()
	return &planned{node: node, vnode: vnode, kinds: schema.Kinds(), cols: outCols, est: est}, nil
}

// aggEstimate estimates the group count of an aggregation: the product
// of the grouping columns' NDVs when statistics cover them, capped by
// the input cardinality.
func (p *Planner) aggEstimate(q *algebra.Query, input *planned) float64 {
	if len(q.GroupBy) == 0 {
		return 1
	}
	prod := 1.0
	for _, g := range q.GroupBy {
		st := p.colStatsFor(input, g)
		if st == nil {
			return input.est/2 + 1
		}
		d := st.NDV
		if st.NullFrac > 0 {
			d++ // NULL forms its own group
		}
		if d < 1 {
			d = 1
		}
		prod *= d
	}
	if prod > input.est {
		prod = input.est
	}
	if prod < 1 {
		prod = 1
	}
	return prod
}

// extraSortExprs returns ORDER BY expressions that must be computed as
// hidden output columns (everything that is not a Var{OutputRT}).
func (p *Planner) extraSortExprs(q *algebra.Query) []algebra.Expr {
	var out []algebra.Expr
	for _, si := range q.OrderBy {
		if v, ok := si.Expr.(*algebra.Var); ok && v.RT == outputRT {
			continue
		}
		out = append(out, si.Expr)
	}
	return out
}

// outputRT is the pseudo range-table index the analyzer uses for Vars that
// reference the query's own output columns.
const outputRT = -1

// applySortLimit adds sort/top-N/limit nodes on top of the fragment,
// staying on the batch engine when the input is vectorized: ORDER BY
// lowers to VecSort (or, with a LIMIT, to the limit-aware VecTopN heap),
// a bare LIMIT/OFFSET to VecLimit. outWidth is the real output width;
// hidden sort columns (if any) sit beyond it and are stripped by a
// projection above the sort. est is the input fragment's cardinality
// estimate, used only to annotate the constructed operators (sorts
// preserve it, top-N/limit cap it at the row count they emit).
func (p *Planner) applySortLimit(q *algebra.Query, node exec.Node, vnode vexec.Node, outWidth int, est float64) (exec.Node, vexec.Node, error) {
	var count, offset int64 = -1, 0
	if q.Limit != nil {
		count = q.Limit.(*algebra.Const).Val.I
	}
	if q.Offset != nil {
		offset = q.Offset.(*algebra.Const).Val.I
	}
	if len(q.OrderBy) > 0 {
		keys := make([]exec.SortKey, 0, len(q.OrderBy))
		hidden := outWidth
		for _, si := range q.OrderBy {
			if v, ok := si.Expr.(*algebra.Var); ok && v.RT == outputRT {
				keys = append(keys, exec.SortKey{Pos: v.Col, Desc: si.Desc})
				continue
			}
			keys = append(keys, exec.SortKey{Pos: hidden, Desc: si.Desc})
			hidden++
		}
		// The hidden-column strip must compile for the batch engine for
		// the sort to stay vectorized; its inputs are the (already
		// vectorized) projection outputs, so this only fails on kinds the
		// pipeline could not have produced.
		var strip []*vexec.Expr
		if vnode != nil && hidden > outWidth {
			kinds := q.Schema().Kinds()
			exprs := make([]algebra.Expr, outWidth)
			for i := 0; i < outWidth; i++ {
				exprs[i] = &algebra.Var{RT: flatRT, Col: i, Name: "col", Typ: kinds[i]}
			}
			var err error
			strip, err = vexec.CompileExprs(exprs, &flatBinder{p: p})
			if err != nil {
				vnode = nil
			}
		}
		if vnode != nil {
			if count >= 0 {
				vnode = vexec.NewVecTopN(vnode, keys, count, offset)
				count, offset = -1, 0 // the heap applied them
				est = limitEst(est, vnode.(*vexec.VecTopN).Count)
			} else {
				vs := vexec.NewVecSort(vnode, keys)
				vs.Spill = p.spillRes("sort")
				vnode = vs
			}
			setEstNode(vnode, est)
			if strip != nil {
				vnode = vexec.NewProject(vnode, strip)
				setEstNode(vnode, est)
			}
			node = vexec.NewRowSource(vnode)
			setEstNode(node, est)
		} else {
			vnode = nil
			rs := exec.NewSort(node, keys)
			rs.Spill = p.spillRes("sort")
			node = rs
			setEstNode(node, est)
			if hidden > outWidth {
				// Strip hidden columns.
				fns := make([]eval.Func, outWidth)
				for i := 0; i < outWidth; i++ {
					pos := i
					fns[i] = func(ctx *eval.Ctx) (types.Value, error) { return ctx.Row[pos], nil }
				}
				node = exec.NewProject(node, fns)
				setEstNode(node, est)
			}
		}
	}
	if count >= 0 || offset > 0 {
		est = limitEst(est, count)
		if vnode != nil {
			vnode = vexec.NewVecLimit(vnode, count, offset)
			node = vexec.NewRowSource(vnode)
			setEstNode(vnode, est)
			setEstNode(node, est)
		} else {
			node = exec.NewLimit(node, count, offset)
			setEstNode(node, est)
		}
	}
	return node, vnode, nil
}

// limitEst caps an estimate at a LIMIT count (negative: no limit).
func limitEst(est float64, count int64) float64 {
	if count >= 0 && float64(count) < est {
		return float64(count)
	}
	return est
}

// ---------------------------------------------------------------------------
// FROM planning and join ordering

func (p *Planner) planFrom(q *algebra.Query) (*planned, error) {
	if len(q.From) == 0 {
		// FROM-less query: a single empty row drives the projection.
		pl := &planned{
			node:   exec.NewScan([]types.Row{{}}),
			layout: map[int]int{},
			rts:    map[int]bool{},
			est:    1,
		}
		setEstNode(pl.node, pl.est)
		if err := p.attachFilter(pl, q.Where); err != nil {
			return nil, err
		}
		return pl, nil
	}

	// The conjunct pool: WHERE conjuncts are consumed by planFromItem as
	// deeply in the join tree as their references allow (scans and inner
	// joins; only preserved sides of outer joins). Leftovers are
	// distributed over the top-level items below.
	pool := &conjPool{conjs: algebra.Conjuncts(hoistCommonOrConjuncts(q.Where))}
	items := make([]*planned, 0, len(q.From))
	for _, fi := range q.From {
		pl, err := p.planFromItem(fi, q, pool)
		if err != nil {
			return nil, err
		}
		items = append(items, pl)
	}
	conjuncts := pool.conjs

	// Push single-fragment conjuncts down as filters.
	var remaining []algebra.Expr
	for _, c := range conjuncts {
		used := algebra.VarsUsed(c)
		target := -1
		for i, it := range items {
			if subset(used, it.rts) {
				target = i
				break
			}
		}
		// Conjuncts with sublinks are kept above joins unless trivially
		// local, to keep subplan evaluation count low.
		if target >= 0 {
			if err := p.attachFilter(items[target], c); err != nil {
				return nil, err
			}
			continue
		}
		remaining = append(remaining, c)
	}

	// Greedy join ordering: repeatedly join the pair with the smallest
	// estimated output, preferring equi-connected pairs over cross
	// products. With column statistics the estimate is
	// |L|·|R| / max(NDV) per join key; without, it falls back to the
	// max-side heuristic.
	for len(items) > 1 {
		bestI, bestJ := -1, -1
		bestConnected := false
		var bestCost float64
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				connected := hasEquiConjunct(remaining, items[i], items[j])
				cost := items[i].est * items[j].est
				if connected {
					cost = p.equiJoinEstimate(items[i], items[j], remaining)
				}
				better := false
				switch {
				case bestI < 0:
					better = true
				case connected && !bestConnected:
					better = true
				case connected == bestConnected && cost < bestCost:
					better = true
				}
				if better {
					bestI, bestJ, bestConnected, bestCost = i, j, connected, cost
				}
			}
		}
		left, right := items[bestI], items[bestJ]
		// Gather all conjuncts answerable by this pair.
		combinedRTs := unionSets(left.rts, right.rts)
		var usable, rest []algebra.Expr
		for _, c := range remaining {
			if subset(algebra.VarsUsed(c), combinedRTs) && !algebra.ContainsSubLink(c) {
				usable = append(usable, c)
			} else {
				rest = append(rest, c)
			}
		}
		joined, err := p.buildJoin(left, right, algebra.JoinInner, algebra.AndAll(usable))
		if err != nil {
			return nil, err
		}
		remaining = rest
		items = append(items[:bestJ], items[bestJ+1:]...)
		items[bestI] = joined
	}

	result := items[0]
	if len(remaining) > 0 {
		if err := p.attachFilter(result, algebra.AndAll(remaining)); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// hoistCommonOrConjuncts factors conjuncts shared by every branch of an
// OR out of the disjunction: (A AND x) OR (A AND y) → A AND (x OR y).
// TPC-H Q19 buries its equi-join predicate inside such a disjunction;
// without the factoring the join degenerates to a cross product.
func hoistCommonOrConjuncts(e algebra.Expr) algebra.Expr {
	if e == nil {
		return nil
	}
	b, ok := e.(*algebra.BinOp)
	if !ok {
		return e
	}
	switch b.Op {
	case "AND":
		left := hoistCommonOrConjuncts(b.Left)
		right := hoistCommonOrConjuncts(b.Right)
		return &algebra.BinOp{Op: "AND", Left: left, Right: right, Typ: types.KindBool}
	case "OR":
		branches := disjuncts(e)
		if len(branches) < 2 {
			return e
		}
		branchConjuncts := make([][]algebra.Expr, len(branches))
		for i, br := range branches {
			branchConjuncts[i] = algebra.Conjuncts(br)
		}
		var common []algebra.Expr
		for _, cand := range branchConjuncts[0] {
			inAll := true
			for _, others := range branchConjuncts[1:] {
				found := false
				for _, o := range others {
					if algebra.EqualExpr(cand, o) {
						found = true
						break
					}
				}
				if !found {
					inAll = false
					break
				}
			}
			if inAll {
				common = append(common, cand)
			}
		}
		if len(common) == 0 {
			return e
		}
		// Rebuild each branch without one occurrence of each common
		// conjunct; an emptied branch makes the residual OR trivially true.
		residualTrue := false
		var residuals []algebra.Expr
		for _, bc := range branchConjuncts {
			var rest []algebra.Expr
			used := make([]bool, len(common))
			for _, c := range bc {
				matched := false
				for ci, cm := range common {
					if !used[ci] && algebra.EqualExpr(c, cm) {
						used[ci] = true
						matched = true
						break
					}
				}
				if !matched {
					rest = append(rest, c)
				}
			}
			if len(rest) == 0 {
				residualTrue = true
				break
			}
			residuals = append(residuals, algebra.AndAll(rest))
		}
		out := algebra.AndAll(common)
		if !residualTrue {
			var orExpr algebra.Expr
			for _, r := range residuals {
				if orExpr == nil {
					orExpr = r
				} else {
					orExpr = &algebra.BinOp{Op: "OR", Left: orExpr, Right: r, Typ: types.KindBool}
				}
			}
			out = &algebra.BinOp{Op: "AND", Left: out, Right: orExpr, Typ: types.KindBool}
		}
		return out
	default:
		return e
	}
}

// disjuncts splits an expression into its top-level OR branches.
func disjuncts(e algebra.Expr) []algebra.Expr {
	if b, ok := e.(*algebra.BinOp); ok && b.Op == "OR" {
		return append(disjuncts(b.Left), disjuncts(b.Right)...)
	}
	return []algebra.Expr{e}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func subset(vars map[int]bool, rts map[int]bool) bool {
	for rt := range vars {
		if !rts[rt] {
			return false
		}
	}
	return true
}

func unionSets(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// hasEquiConjunct reports whether any conjunct equi-connects the two
// fragments.
func hasEquiConjunct(conjuncts []algebra.Expr, a, b *planned) bool {
	for _, c := range conjuncts {
		if l, r, _, ok := equiSides(c); ok {
			lu, ru := algebra.VarsUsed(l), algebra.VarsUsed(r)
			if len(lu) == 0 || len(ru) == 0 {
				continue
			}
			if (subset(lu, a.rts) && subset(ru, b.rts)) || (subset(lu, b.rts) && subset(ru, a.rts)) {
				return true
			}
		}
	}
	return false
}

// equiSides decomposes an equality conjunct into its two sides. It
// recognizes plain '=' and the null-safe IS NOT DISTINCT FROM that the
// provenance rewriter emits.
func equiSides(c algebra.Expr) (left, right algebra.Expr, nullSafe, ok bool) {
	switch n := c.(type) {
	case *algebra.BinOp:
		if n.Op == "=" && !algebra.ContainsSubLink(n.Left) && !algebra.ContainsSubLink(n.Right) {
			return n.Left, n.Right, false, true
		}
	case *algebra.DistinctFrom:
		if n.Not {
			return n.Left, n.Right, true, true
		}
	}
	return nil, nil, false, false
}

// buildJoin joins two fragments with the given condition, choosing a hash
// join when equi-keys are extractable. For commutable (inner/cross)
// joins the smaller estimated side becomes the build (right) input — on
// provenance-rewritten queries this keeps the blown-up side streaming
// through the probe instead of being materialized in the hash table.
func (p *Planner) buildJoin(left, right *planned, kind algebra.JoinKind, cond algebra.Expr) (*planned, error) {
	if (kind == algebra.JoinInner || kind == algebra.JoinCross) && right.est > left.est {
		left, right = right, left
	}
	combined := &planned{
		layout: make(map[int]int, len(left.layout)+len(right.layout)),
		kinds:  append(append([]types.Kind{}, left.kinds...), right.kinds...),
		rts:    unionSets(left.rts, right.rts),
	}
	for rt, off := range left.layout {
		combined.layout[rt] = off
	}
	shift := len(left.kinds)
	for rt, off := range right.layout {
		combined.layout[rt] = off + shift
	}

	var jt exec.JoinType
	switch kind {
	case algebra.JoinInner, algebra.JoinCross:
		jt = exec.InnerJoin
	case algebra.JoinLeft:
		jt = exec.LeftJoin
	case algebra.JoinRight:
		jt = exec.RightJoin
	case algebra.JoinFull:
		jt = exec.FullJoin
	}

	// Column provenance: both sides pass through an inner join; the
	// null-producing side(s) of outer joins lose their runtime-filter
	// attachment points (pruning below a null-extension could turn a
	// matched row into a null-extended one and change null-safe joins
	// above).
	lc, rc := fragCols(left), fragCols(right)
	switch jt {
	case exec.LeftJoin:
		rc = clearScans(rc)
	case exec.RightJoin:
		lc = clearScans(lc)
	case exec.FullJoin:
		lc, rc = clearScans(lc), clearScans(rc)
	}
	combined.cols = append(append([]colInfo{}, lc...), rc...)

	// Try to extract equi-keys for a hash join.
	var leftKeyExprs, rightKeyExprs []algebra.Expr
	var nullSafe []bool
	var residual []algebra.Expr
	for _, c := range algebra.Conjuncts(cond) {
		l, r, ns, ok := equiSides(c)
		if ok {
			lu, ru := algebra.VarsUsed(l), algebra.VarsUsed(r)
			switch {
			case subset(lu, left.rts) && subset(ru, right.rts) && len(lu) > 0 && len(ru) > 0:
				leftKeyExprs = append(leftKeyExprs, l)
				rightKeyExprs = append(rightKeyExprs, r)
				nullSafe = append(nullSafe, ns)
				continue
			case subset(ru, left.rts) && subset(lu, right.rts) && len(lu) > 0 && len(ru) > 0:
				leftKeyExprs = append(leftKeyExprs, r)
				rightKeyExprs = append(rightKeyExprs, l)
				nullSafe = append(nullSafe, ns)
				continue
			}
		}
		residual = append(residual, c)
	}

	combinedBinder := &rowBinder{p: p, layout: combined.layout}
	if len(leftKeyExprs) > 0 {
		est := p.hashJoinEstimate(left, right, leftKeyExprs, rightKeyExprs)
		// Vectorized hash join: inner and left joins whose key (and, for
		// inner joins, residual) expressions compile for the batch engine.
		// An inner-join residual becomes a vectorized filter above the
		// join, which is equivalent; a left join with a residual falls
		// back, because the residual takes part in the match decision.
		if p.vectorized && left.vnode != nil && right.vnode != nil &&
			(jt == exec.InnerJoin || (jt == exec.LeftJoin && len(residual) == 0)) {
			if vj := p.tryVecHashJoin(left, right, leftKeyExprs, rightKeyExprs, nullSafe, residual, jt, combined, est); vj != nil {
				p.setVNode(combined, vj)
				setFragEst(combined, est)
				return combined, nil
			}
		}
		demote(left)
		demote(right)
		leftBinder := &rowBinder{p: p, layout: left.layout}
		rightBinder := &rowBinder{p: p, layout: shiftedLayout(right.layout, 0)}
		lk, err := eval.CompileAll(leftKeyExprs, leftBinder)
		if err != nil {
			return nil, err
		}
		rk, err := eval.CompileAll(rightKeyExprs, rightBinder)
		if err != nil {
			return nil, err
		}
		var res eval.Func
		if len(residual) > 0 {
			var err error
			res, err = eval.Compile(algebra.AndAll(residual), combinedBinder)
			if err != nil {
				return nil, err
			}
		}
		combined.node = exec.NewHashJoin(left.node, right.node, lk, rk, nullSafe, res, jt, left.kinds, right.kinds)
		setFragEst(combined, est)
		return combined, nil
	}

	// No equi-keys: nested-loop join. The vectorized variant covers inner
	// and left joins (the condition takes part in the match decision, so
	// arbitrary residuals are fine) and assembles pair batches by gather
	// instead of boxing one row per pair.
	if p.vectorized && left.vnode != nil && right.vnode != nil &&
		(jt == exec.InnerJoin || jt == exec.LeftJoin) {
		var vcond *vexec.Expr
		condOK := cond == nil
		if cond != nil {
			if ve, err := vexec.CompileExpr(cond, combinedBinder); err == nil && ve.Kind() == types.KindBool {
				vcond, condOK = ve, true
			}
		}
		if condOK {
			vjt := vexec.InnerJoin
			if jt == exec.LeftJoin {
				vjt = vexec.LeftJoin
			}
			nlj := vexec.NewNLJoin(left.vnode, right.vnode, vcond, vjt, left.kinds, right.kinds)
			nlj.SetActivity(p.activity)
			p.setVNode(combined, nlj)
			est := left.est * right.est
			if cond != nil {
				est = est*0.3 + 1
			}
			setFragEst(combined, est)
			return combined, nil
		}
	}
	demote(left)
	demote(right)
	var condFn eval.Func
	if cond != nil {
		var err error
		condFn, err = eval.Compile(cond, combinedBinder)
		if err != nil {
			return nil, err
		}
	}
	combined.node = exec.NewNestedLoopJoin(left.node, right.node, condFn, jt, left.kinds, right.kinds)
	est := left.est * right.est
	if cond != nil {
		est = est*0.3 + 1
	}
	setFragEst(combined, est)
	return combined, nil
}

// hashJoinEstimate estimates a hash join's output cardinality from key
// statistics: |L|·|R| / max(NDV_l, NDV_r) per key pair when both sides'
// sketches are known, the max-side heuristic otherwise.
func (p *Planner) hashJoinEstimate(left, right *planned, leftKeys, rightKeys []algebra.Expr) float64 {
	sel := 1.0
	known := false
	for k := range leftKeys {
		ls, rs := p.colStatsFor(left, leftKeys[k]), p.colStatsFor(right, rightKeys[k])
		if ls == nil || rs == nil {
			continue
		}
		if d := maxf(ls.NDV, rs.NDV); d > 1 {
			sel /= d
			known = true
		}
	}
	if !known {
		return maxf(left.est, right.est)
	}
	return maxf(left.est*right.est*sel, 1)
}

// equiJoinEstimate estimates the join size of two fragments connected by
// the equi-conjuncts found in the pool (greedy-ordering cost).
func (p *Planner) equiJoinEstimate(a, b *planned, conjuncts []algebra.Expr) float64 {
	var aKeys, bKeys []algebra.Expr
	for _, c := range conjuncts {
		l, r, _, ok := equiSides(c)
		if !ok {
			continue
		}
		lu, ru := algebra.VarsUsed(l), algebra.VarsUsed(r)
		if len(lu) == 0 || len(ru) == 0 {
			continue
		}
		switch {
		case subset(lu, a.rts) && subset(ru, b.rts):
			aKeys, bKeys = append(aKeys, l), append(bKeys, r)
		case subset(lu, b.rts) && subset(ru, a.rts):
			aKeys, bKeys = append(aKeys, r), append(bKeys, l)
		}
	}
	return p.hashJoinEstimate(a, b, aKeys, bKeys)
}

// colStatsFor resolves an expression to the statistics of the fragment
// column it references (bare column references only).
func (p *Planner) colStatsFor(pl *planned, e algebra.Expr) *catalog.ColStats {
	v, ok := e.(*algebra.Var)
	if !ok || v.RT < 0 || pl.cols == nil {
		return nil
	}
	off, ok := pl.layout[v.RT]
	if !ok || off+v.Col >= len(pl.cols) {
		return nil
	}
	return pl.cols[off+v.Col].stats
}

// selectivity estimates the fraction of the fragment's rows a predicate
// keeps, multiplying per-conjunct estimates: equality against a constant
// uses 1/NDV, ranges interpolate against the column's min/max sketch,
// and shapes the statistics cannot see fall back to the classic
// magic constants.
func (p *Planner) selectivity(e algebra.Expr, pl *planned) float64 {
	s := 1.0
	for _, c := range algebra.Conjuncts(e) {
		s *= p.selOne(c, pl)
	}
	return clampSel(s)
}

func clampSel(s float64) float64 {
	switch {
	case s < 1e-4:
		return 1e-4
	case s > 1:
		return 1
	}
	return s
}

func (p *Planner) selOne(c algebra.Expr, pl *planned) float64 {
	switch n := c.(type) {
	case *algebra.Const:
		if !n.Val.Null && n.Val.K == types.KindBool && !n.Val.B {
			return 1e-4 // constant FALSE
		}
		return 1
	case *algebra.BinOp:
		switch n.Op {
		case "AND":
			return clampSel(p.selOne(n.Left, pl) * p.selOne(n.Right, pl))
		case "OR":
			a, b := p.selOne(n.Left, pl), p.selOne(n.Right, pl)
			return clampSel(a + b - a*b)
		case "=":
			if st, _, ok := p.varConstSide(n.Left, n.Right, pl); ok && st.NDV >= 1 {
				return clampSel(1 / st.NDV)
			}
			ls, rs := p.colStatsFor(pl, n.Left), p.colStatsFor(pl, n.Right)
			if ls != nil && rs != nil {
				if d := maxf(ls.NDV, rs.NDV); d >= 1 {
					return clampSel(1 / d)
				}
			}
			return 0.1
		case "<>":
			return 0.9
		case "<", "<=", ">", ">=":
			return p.rangeSel(n, pl)
		case "LIKE":
			return 0.25
		}
		return 0.3
	case *algebra.UnOp:
		if n.Op == "NOT" {
			return clampSel(1 - p.selOne(n.Expr, pl))
		}
		return 0.3
	case *algebra.IsNull:
		frac := 0.05
		if st := p.colStatsFor(pl, n.Expr); st != nil {
			frac = st.NullFrac
		}
		if n.Not {
			return clampSel(1 - frac)
		}
		return clampSel(frac)
	case *algebra.DistinctFrom:
		if n.Not { // null-safe equality
			if st := p.colStatsFor(pl, n.Left); st != nil && st.NDV >= 1 {
				return clampSel(1 / st.NDV)
			}
			if st := p.colStatsFor(pl, n.Right); st != nil && st.NDV >= 1 {
				return clampSel(1 / st.NDV)
			}
			return 0.1
		}
		return 0.9
	default:
		return 0.3
	}
}

// varConstSide matches a (column, constant) operand pair in either order
// and returns the column's statistics plus the folded constant.
func (p *Planner) varConstSide(a, b algebra.Expr, pl *planned) (*catalog.ColStats, types.Value, bool) {
	if st := p.colStatsFor(pl, a); st != nil {
		if v, ok := constValue(b); ok {
			return st, v, true
		}
	}
	if st := p.colStatsFor(pl, b); st != nil {
		if v, ok := constValue(a); ok {
			return st, v, true
		}
	}
	return nil, types.NullValue, false
}

// rangeSel interpolates a range predicate's selectivity within the
// column's [min, max] sketch.
func (p *Planner) rangeSel(n *algebra.BinOp, pl *planned) float64 {
	st := p.colStatsFor(pl, n.Left)
	op := n.Op
	var cv types.Value
	var ok bool
	if st != nil {
		cv, ok = constValue(n.Right)
	} else if st = p.colStatsFor(pl, n.Right); st != nil {
		// Flip the comparison so the column is on the left.
		if cv, ok = constValue(n.Left); ok {
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
	}
	if st == nil || !ok || !st.HasRange || cv.Null || !cv.K.Numeric() && cv.K != types.KindDate {
		return 0.3
	}
	v := cv.AsFloat()
	width := st.MaxF - st.MinF
	if width <= 0 {
		if (op == "<" || op == "<=") == (v >= st.MinF) || v == st.MinF {
			return 0.5
		}
		return 0.3
	}
	var frac float64
	switch op {
	case "<", "<=":
		frac = (v - st.MinF) / width
	default: // ">", ">="
		frac = (st.MaxF - v) / width
	}
	return clampSel(frac * (1 - st.NullFrac))
}

// constValue folds a constant-only expression (including the date ±
// interval arithmetic TPC-H predicates carry) to its value, sharing the
// vectorized compiler's folding semantics.
func constValue(e algebra.Expr) (types.Value, bool) {
	return algebra.FoldConst(e)
}

// tryVecHashJoin compiles the hash-join keys (and an inner join's
// residual) for the batch engine and returns the vectorized join tree,
// or nil when some expression is not vectorizable. For inner joins it
// also wires runtime filters: every key whose probe-side expression is a
// bare column traced to a columnar scan gets a filter published by this
// join's build and applied by that scan.
func (p *Planner) tryVecHashJoin(left, right *planned, leftKeyExprs, rightKeyExprs []algebra.Expr,
	nullSafe []bool, residual []algebra.Expr, jt exec.JoinType, combined *planned, est float64) vexec.Node {
	lk, err := vexec.CompileExprs(leftKeyExprs, &rowBinder{p: p, layout: left.layout})
	if err != nil {
		return nil
	}
	rk, err := vexec.CompileExprs(rightKeyExprs, &rowBinder{p: p, layout: shiftedLayout(right.layout, 0)})
	if err != nil {
		return nil
	}
	var res *vexec.Expr
	if len(residual) > 0 {
		res, err = vexec.CompileExpr(algebra.AndAll(residual), &rowBinder{p: p, layout: combined.layout})
		if err != nil || res.Kind() != types.KindBool {
			return nil
		}
	}
	vjt := vexec.InnerJoin
	if jt == exec.LeftJoin {
		vjt = vexec.LeftJoin
	}
	vj := vexec.NewHashJoin(left.vnode, right.vnode, lk, rk, nullSafe, vjt, left.kinds, right.kinds)
	vj.SetActivity(p.activity)
	vj.Spill = p.spillRes("hashjoin")
	if vjt == vexec.InnerJoin && left.cols != nil {
		// Left-join probe rows must survive to null-extend, so only inner
		// joins may prune them at the source.
		var publish []*vexec.RuntimeFilter
		for k, le := range leftKeyExprs {
			v, ok := le.(*algebra.Var)
			if !ok || v.RT < 0 {
				continue
			}
			off, ok := left.layout[v.RT]
			if !ok || off+v.Col >= len(left.cols) {
				continue
			}
			origin := left.cols[off+v.Col]
			if origin.scan == nil {
				continue
			}
			if publish == nil {
				publish = make([]*vexec.RuntimeFilter, len(leftKeyExprs))
			}
			rf := vexec.NewRuntimeFilter(nullSafe[k])
			origin.scan.AddRuntimeFilter(rf, origin.scanCol)
			publish[k] = rf
		}
		vj.Publish = publish
	}
	setEstNode(vj, est)
	var vn vexec.Node = vj
	if res != nil {
		// The caller's estimate already absorbs the residual's
		// selectivity into the join estimate, so the filter above the
		// join carries the same number.
		vn = vexec.NewFilter(vn, res)
		setEstNode(vn, est)
	}
	return vn
}

// shiftedLayout returns a copy of a layout rebased to the given start.
func shiftedLayout(layout map[int]int, base int) map[int]int {
	out := make(map[int]int, len(layout))
	minOff := -1
	for _, off := range layout {
		if minOff < 0 || off < minOff {
			minOff = off
		}
	}
	for rt, off := range layout {
		out[rt] = off - minOff + base
	}
	return out
}

// conjPool holds the WHERE conjuncts still looking for the deepest plan
// position that can answer them.
type conjPool struct {
	conjs []algebra.Expr
}

// take removes and returns the sublink-free conjuncts fully answerable by
// the given range-table entry set.
func (cp *conjPool) take(rts map[int]bool) []algebra.Expr {
	var taken, rest []algebra.Expr
	for _, c := range cp.conjs {
		used := algebra.VarsUsed(c)
		if len(used) > 0 && subset(used, rts) && !algebra.ContainsSubLink(c) {
			taken = append(taken, c)
		} else {
			rest = append(rest, c)
		}
	}
	cp.conjs = rest
	return taken
}

// takeSublinks removes and returns the sublink-bearing conjuncts fully
// answerable by the given range-table entry set, provided every sublink
// in them is a scalar or EXISTS form. Those forms are uncorrelated and
// materialize to a single cached value wherever the filter lands, so
// sinking them is free per row — and placing them deep prunes join
// inputs early. TPC-H Q15's provenance rewrite is the extreme case: its
// max-revenue filter lands under a cross-shaped outer join, where
// evaluating it before the join shrinks the preserved side by orders of
// magnitude. Quantified (ANY/ALL) sublinks compare against every
// subquery row per input row, so they stay high where the input is
// smallest.
func (cp *conjPool) takeSublinks(rts map[int]bool) []algebra.Expr {
	var taken, rest []algebra.Expr
	for _, c := range cp.conjs {
		used := algebra.VarsUsed(c)
		if len(used) > 0 && subset(used, rts) && algebra.ContainsSubLink(c) && onlyCheapSublinks(c) {
			taken = append(taken, c)
		} else {
			rest = append(rest, c)
		}
	}
	cp.conjs = rest
	return taken
}

// onlyCheapSublinks reports whether every sublink in the expression is a
// scalar or EXISTS sublink (constant once materialized).
func onlyCheapSublinks(e algebra.Expr) bool {
	ok := true
	algebra.WalkExpr(e, func(x algebra.Expr) {
		if sl, isSub := x.(*algebra.SubLink); isSub {
			if sl.Kind != algebra.SubScalar && sl.Kind != algebra.SubExists {
				ok = false
			}
		}
	})
	return ok
}

// planFromItem plans one FROM item, pushing applicable pool conjuncts
// down to scans and into inner-join conditions along the way.
func (p *Planner) planFromItem(fi algebra.FromItem, q *algebra.Query, pool *conjPool) (*planned, error) {
	switch n := fi.(type) {
	case *algebra.FromRef:
		pl, err := p.planRTE(n.RT, q.RangeTable[n.RT])
		if err != nil {
			return nil, err
		}
		if taken := pool.take(pl.rts); len(taken) > 0 {
			if err := p.attachFilter(pl, algebra.AndAll(taken)); err != nil {
				return nil, err
			}
		}
		// Scalar/EXISTS sublink conjuncts local to this entry sink all
		// the way down too: the subplan materializes once regardless of
		// placement, and filtering here prunes every join above.
		if taken := pool.takeSublinks(pl.rts); len(taken) > 0 {
			if err := p.attachFilter(pl, algebra.AndAll(taken)); err != nil {
				return nil, err
			}
		}
		return pl, nil
	case *algebra.FromJoin:
		return p.planJoinItem(n, q, pool)
	default:
		return nil, fmt.Errorf("plan: unknown from item %T", fi)
	}
}

// planJoinItem plans an explicit join, routing condition conjuncts to the
// deepest valid position first:
//
//   - Inner/cross joins: the ON condition is WHERE-equivalent, so its
//     sublink-free conjuncts enter the shared pool, sink to scans or
//     deeper joins, and whatever still spans both sides returns to this
//     join's condition (where buildJoin extracts hash keys).
//   - Outer joins: conjuncts referencing only the nullable side may
//     filter that input before the join (rows failing them can never
//     match, and null-extension is unaffected); everything else — in
//     particular conjuncts on the preserved side alone — must stay in the
//     condition. WHERE-pool conjuncts are only offered to preserved sides.
func (p *Planner) planJoinItem(n *algebra.FromJoin, q *algebra.Query, pool *conjPool) (*planned, error) {
	if n.Kind == algebra.JoinInner || n.Kind == algebra.JoinCross {
		var keep []algebra.Expr
		for _, c := range algebra.Conjuncts(n.Cond) {
			// Variable-free conjuncts stay here: pushdown cannot place
			// them, and a pool leftover would be silently dropped when
			// this join sits under a FULL JOIN's throwaway pools.
			if algebra.ContainsSubLink(c) || len(algebra.VarsUsed(c)) == 0 {
				keep = append(keep, c)
			} else {
				pool.conjs = append(pool.conjs, c)
			}
		}
		left, err := p.planFromItem(n.Left, q, pool)
		if err != nil {
			return nil, err
		}
		right, err := p.planFromItem(n.Right, q, pool)
		if err != nil {
			return nil, err
		}
		taken := pool.take(unionSets(left.rts, right.rts))
		joined, err := p.buildJoin(left, right, n.Kind, algebra.AndAll(append(keep, taken...)))
		if err != nil {
			return nil, err
		}
		// Sublink conjuncts answerable by this join land here rather than
		// at the top of the whole FROM clause, below any enclosing outer
		// joins.
		if taken := pool.takeSublinks(joined.rts); len(taken) > 0 {
			if err := p.attachFilter(joined, algebra.AndAll(taken)); err != nil {
				return nil, err
			}
		}
		return joined, nil
	}

	var nullable algebra.FromItem
	switch n.Kind {
	case algebra.JoinLeft:
		nullable = n.Right
	case algebra.JoinRight:
		nullable = n.Left
	}
	nullPool := &conjPool{}
	var keep []algebra.Expr
	if nullable != nil {
		nullableRTs := make(map[int]bool)
		algebra.FromRTs(nullable, nullableRTs)
		for _, c := range algebra.Conjuncts(n.Cond) {
			used := algebra.VarsUsed(c)
			if len(used) > 0 && subset(used, nullableRTs) && !algebra.ContainsSubLink(c) {
				nullPool.conjs = append(nullPool.conjs, c)
			} else {
				keep = append(keep, c)
			}
		}
	} else {
		keep = algebra.Conjuncts(n.Cond)
	}
	leftPool, rightPool := pool, nullPool
	switch n.Kind {
	case algebra.JoinRight:
		leftPool, rightPool = nullPool, pool
	case algebra.JoinFull:
		leftPool, rightPool = &conjPool{}, &conjPool{}
	}
	left, err := p.planFromItem(n.Left, q, leftPool)
	if err != nil {
		return nil, err
	}
	right, err := p.planFromItem(n.Right, q, rightPool)
	if err != nil {
		return nil, err
	}
	// WHERE conjuncts with sublinks sink onto the preserved side like any
	// other preserved-side conjunct (rows they reject are removed whether
	// the filter runs before or after the join, and null-extension only
	// depends on preserved rows that survive either way).
	switch n.Kind {
	case algebra.JoinLeft:
		if taken := pool.takeSublinks(left.rts); len(taken) > 0 {
			if err := p.attachFilter(left, algebra.AndAll(taken)); err != nil {
				return nil, err
			}
		}
	case algebra.JoinRight:
		if taken := pool.takeSublinks(right.rts); len(taken) > 0 {
			if err := p.attachFilter(right, algebra.AndAll(taken)); err != nil {
				return nil, err
			}
		}
	}
	// Conjuncts the nullable side could not absorb return to the condition.
	keep = append(keep, nullPool.conjs...)
	nullPool.conjs = nil
	return p.buildJoin(left, right, n.Kind, algebra.AndAll(keep))
}

func (p *Planner) planRTE(rt int, rte *algebra.RTE) (*planned, error) {
	switch rte.Kind {
	case algebra.RTERelation:
		t, ok := p.cat.Table(rte.RelName)
		if !ok {
			if v, vok := p.cat.Virtual(rte.RelName); vok {
				return p.planVirtual(rt, rte, v)
			}
			return nil, fmt.Errorf("plan: table %q disappeared", rte.RelName)
		}
		kinds := rte.Cols.Kinds()
		// Per-column statistics drive selectivity and join-order
		// estimates; they are recomputed lazily behind the heap version.
		st := t.Stats()
		mkCols := func() []colInfo {
			infos := make([]colInfo, len(kinds))
			for i := range infos {
				if i < len(st.Cols) {
					infos[i].stats = &st.Cols[i]
				}
			}
			return infos
		}
		if p.vectorized {
			if cols, n, ok := t.Heap.SnapshotColumns(kinds); ok {
				heap := t.Heap
				scan := vexec.NewColScan(cols, n)
				scan.Table = rte.RelName
				scan.SetActivity(p.activity)
				infos := mkCols()
				for i := range infos {
					infos[i].scan, infos[i].scanCol = scan, i
				}
				aq := p.activity
				relName := rte.RelName
				pl := &planned{
					layout: map[int]int{rt: 0},
					kinds:  kinds,
					cols:   infos,
					rts:    map[int]bool{rt: true},
					est:    float64(n) + 1,
					rowScan: func() exec.Node {
						rs := exec.NewScan(heap.Snapshot())
						rs.Table = relName
						rs.SetActivity(aq)
						return rs
					},
				}
				p.setVNode(pl, scan)
				setFragEst(pl, pl.est)
				return pl, nil
			}
		}
		rows := t.Heap.Snapshot()
		rs := exec.NewScan(rows)
		rs.Table = rte.RelName
		rs.SetActivity(p.activity)
		pl := &planned{
			node:   rs,
			layout: map[int]int{rt: 0},
			kinds:  kinds,
			cols:   mkCols(),
			rts:    map[int]bool{rt: true},
			est:    float64(len(rows)) + 1,
		}
		setEstNode(pl.node, pl.est)
		return pl, nil
	case algebra.RTESubquery:
		sub, err := p.planQuery(rte.Subquery)
		if err != nil {
			return nil, err
		}
		// The subquery's output columns map one-to-one onto this entry's
		// columns, so its column provenance (and thus runtime-filter
		// reach and statistics) passes through the boundary.
		var infos []colInfo
		if sub.cols != nil && len(sub.cols) == len(rte.Cols.Kinds()) {
			infos = sub.cols
		}
		return &planned{
			node:   sub.node,
			vnode:  sub.vnode,
			layout: map[int]int{rt: 0},
			kinds:  rte.Cols.Kinds(),
			cols:   infos,
			rts:    map[int]bool{rt: true},
			est:    sub.est,
		}, nil
	case algebra.RTEValues:
		var rows []types.Row
		binder := &rowBinder{p: p, layout: map[int]int{}}
		var ctx eval.Ctx
		for _, exprRow := range rte.Rows {
			fns, err := eval.CompileAll(exprRow, binder)
			if err != nil {
				return nil, err
			}
			row := make(types.Row, len(fns))
			for i, f := range fns {
				v, err := f(&ctx)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			rows = append(rows, row)
		}
		pl := &planned{
			node:   exec.NewScan(rows),
			layout: map[int]int{rt: 0},
			kinds:  rte.Cols.Kinds(),
			rts:    map[int]bool{rt: true},
			est:    float64(len(rows)) + 1,
		}
		setEstNode(pl.node, pl.est)
		return pl, nil
	default:
		return nil, fmt.Errorf("plan: unknown RTE kind %d", rte.Kind)
	}
}

// planVirtual scans a virtual system table: the row generator runs now
// (planning happens per execution, so every query sees a fresh
// snapshot), and the rows lower to a columnar scan when the vectorized
// engine can represent them, a row scan otherwise.
func (p *Planner) planVirtual(rt int, rte *algebra.RTE, v *catalog.VirtualTable) (*planned, error) {
	rows := v.Rows()
	kinds := rte.Cols.Kinds()
	pl := &planned{
		layout: map[int]int{rt: 0},
		kinds:  kinds,
		rts:    map[int]bool{rt: true},
		est:    float64(len(rows)) + 1,
	}
	if p.vectorized {
		if cols, ok := vector.FromRows(rows, kinds); ok {
			scan := vexec.NewColScan(cols, len(rows))
			scan.Table = v.Name
			scan.SetActivity(p.activity)
			aq := p.activity
			pl.rowScan = func() exec.Node {
				rs := exec.NewScan(rows)
				rs.Table = v.Name
				rs.SetActivity(aq)
				return rs
			}
			p.setVNode(pl, scan)
			setFragEst(pl, pl.est)
			return pl, nil
		}
	}
	rs := exec.NewScan(rows)
	rs.Table = v.Name
	rs.SetActivity(p.activity)
	pl.node = rs
	setEstNode(pl.node, pl.est)
	return pl, nil
}

// ---------------------------------------------------------------------------
// Aggregation

// planAggregation builds the HashAgg node plus the post-aggregation
// HAVING filter and projection. It rewrites target/HAVING/ORDER BY
// expressions to reference the aggregate output row (groups first, then
// aggregate results). The aggregation, the HAVING filter and the final
// projection each stay vectorized as long as their expressions compile
// for the batch engine; the first unsupported stage drops to the row
// engine over the vectorized prefix.
func (p *Planner) planAggregation(q *algebra.Query, input *planned, est float64) (exec.Node, vexec.Node, error) {
	// Collect distinct aggregate references from targets, HAVING and
	// ORDER BY expressions.
	var aggRefs []*algebra.AggRef
	collect := func(e algebra.Expr) {
		algebra.WalkExpr(e, func(x algebra.Expr) {
			if ar, ok := x.(*algebra.AggRef); ok {
				for _, seen := range aggRefs {
					if algebra.EqualExpr(seen, ar) {
						return
					}
				}
				aggRefs = append(aggRefs, ar)
			}
		})
	}
	for _, te := range q.TargetList {
		collect(te.Expr)
	}
	collect(q.Having)
	for _, si := range q.OrderBy {
		collect(si.Expr)
	}

	var node exec.Node
	var vnode vexec.Node
	if input.vnode != nil {
		if vn := p.tryVecAgg(q, input, aggRefs); vn != nil {
			vnode = vn
			node = vexec.NewRowSource(vn)
			setEstNode(vnode, est)
			setEstNode(node, est)
		}
	}
	if node == nil {
		demote(input)
		inBinder := &rowBinder{p: p, layout: input.layout}
		groupFns, err := eval.CompileAll(q.GroupBy, inBinder)
		if err != nil {
			return nil, nil, err
		}
		specs := make([]exec.AggSpec, len(aggRefs))
		for i, ar := range aggRefs {
			spec := exec.AggSpec{Distinct: ar.Distinct, ResultKind: ar.Typ}
			switch ar.Fn {
			case algebra.AggCount:
				if ar.Star {
					spec.Kind = exec.AggCountStar
				} else {
					spec.Kind = exec.AggCount
				}
			case algebra.AggSum:
				spec.Kind = exec.AggSum
			case algebra.AggAvg:
				spec.Kind = exec.AggAvg
			case algebra.AggMin:
				spec.Kind = exec.AggMin
			case algebra.AggMax:
				spec.Kind = exec.AggMax
			}
			if ar.Arg != nil {
				fn, err := eval.Compile(ar.Arg, inBinder)
				if err != nil {
					return nil, nil, err
				}
				spec.Arg = fn
			}
			specs[i] = spec
		}
		node = exec.NewHashAgg(input.node, groupFns, specs)
		setEstNode(node, est)
	}

	// Aggregate output layout: group values 0..G-1, aggregates G..G+A-1.
	mapAgg := func(e algebra.Expr) (algebra.Expr, error) {
		return mapToAggOutput(e, q.GroupBy, aggRefs)
	}
	aggBinder := &flatBinder{p: p}

	if q.Having != nil {
		mapped, err := mapAgg(q.Having)
		if err != nil {
			return nil, nil, err
		}
		attached := false
		if vnode != nil {
			if ve, verr := vexec.CompileExpr(mapped, &flatBinder{p: p}); verr == nil && ve.Kind() == types.KindBool {
				vnode = vexec.NewFilter(vnode, ve)
				node = vexec.NewRowSource(vnode)
				setEstNode(vnode, est)
				setEstNode(node, est)
				attached = true
			}
		}
		if !attached {
			pred, err := eval.Compile(mapped, aggBinder)
			if err != nil {
				return nil, nil, err
			}
			node = exec.NewFilter(node, pred)
			setEstNode(node, est)
			vnode = nil
		}
	}

	exprs := make([]algebra.Expr, 0, len(q.TargetList))
	for _, te := range q.TargetList {
		mapped, err := mapAgg(te.Expr)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, mapped)
	}
	for _, se := range p.extraSortExprs(q) {
		mapped, err := mapAgg(se)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, mapped)
	}
	if vnode != nil {
		if ves, verr := vexec.CompileExprs(exprs, &flatBinder{p: p}); verr == nil {
			vnode = vexec.NewProject(vnode, ves)
			setEstNode(vnode, est)
			rs := vexec.NewRowSource(vnode)
			setEstNode(rs, est)
			return rs, vnode, nil
		}
	}
	fns, err := eval.CompileAll(exprs, aggBinder)
	if err != nil {
		return nil, nil, err
	}
	proj := exec.NewProject(node, fns)
	setEstNode(proj, est)
	return proj, nil, nil
}

// tryVecAgg compiles the aggregation itself for the batch engine:
// vectorizable group expressions and aggregate arguments, no DISTINCT
// aggregates, and aggregate kinds the columnar accumulators cover.
// Returns nil when the row engine must aggregate instead.
func (p *Planner) tryVecAgg(q *algebra.Query, input *planned, aggRefs []*algebra.AggRef) vexec.Node {
	bind := &rowBinder{p: p, layout: input.layout}
	groups, err := vexec.CompileExprs(q.GroupBy, bind)
	if err != nil {
		return nil
	}
	specs := make([]vexec.AggSpec, len(aggRefs))
	for i, ar := range aggRefs {
		if ar.Distinct {
			return nil
		}
		spec := vexec.AggSpec{Fn: ar.Fn, Star: ar.Star, ResultKind: ar.Typ}
		var argKind types.Kind
		if ar.Arg != nil {
			arg, err := vexec.CompileExpr(ar.Arg, bind)
			if err != nil {
				return nil
			}
			spec.Arg = arg
			argKind = arg.Kind()
		}
		switch ar.Fn {
		case algebra.AggCount:
			if ar.Typ != types.KindInt {
				return nil
			}
		case algebra.AggSum:
			if !argKind.Numeric() || (ar.Typ != types.KindInt && ar.Typ != types.KindFloat) {
				return nil
			}
		case algebra.AggAvg:
			if !argKind.Numeric() || ar.Typ != types.KindFloat {
				return nil
			}
		case algebra.AggMin, algebra.AggMax:
			ok := argKind == ar.Typ || (argKind.Numeric() && ar.Typ.Numeric())
			if !ok {
				return nil
			}
		default:
			return nil
		}
		specs[i] = spec
	}
	agg := vexec.NewHashAgg(input.vnode, groups, specs)
	agg.Spill = p.spillRes("hashagg")
	return agg
}

// mapToAggOutput rewrites an expression over the aggregation input into
// one over the aggregation output row: subtrees matching a GROUP BY
// expression become column references, AggRefs become references to their
// computed slot. The result uses flat Vars (RT -2) bound by flatBinder.
func mapToAggOutput(e algebra.Expr, groupBy []algebra.Expr, aggRefs []*algebra.AggRef) (algebra.Expr, error) {
	if e == nil {
		return nil, nil
	}
	for i, g := range groupBy {
		if algebra.EqualExpr(e, g) {
			return &algebra.Var{RT: flatRT, Col: i, Name: "group", Typ: algebra.TypeOf(g)}, nil
		}
	}
	if ar, ok := e.(*algebra.AggRef); ok {
		for i, seen := range aggRefs {
			if algebra.EqualExpr(seen, ar) {
				return &algebra.Var{RT: flatRT, Col: len(groupBy) + i, Name: "agg", Typ: ar.Typ}, nil
			}
		}
		return nil, fmt.Errorf("plan: aggregate not collected (planner bug)")
	}
	switch n := e.(type) {
	case *algebra.Var:
		return nil, fmt.Errorf("plan: column %q must appear in GROUP BY", n.Name)
	case *algebra.Const:
		c := *n
		return &c, nil
	case *algebra.BinOp:
		c := *n
		var err error
		if c.Left, err = mapToAggOutput(n.Left, groupBy, aggRefs); err != nil {
			return nil, err
		}
		if c.Right, err = mapToAggOutput(n.Right, groupBy, aggRefs); err != nil {
			return nil, err
		}
		return &c, nil
	case *algebra.UnOp:
		c := *n
		var err error
		if c.Expr, err = mapToAggOutput(n.Expr, groupBy, aggRefs); err != nil {
			return nil, err
		}
		return &c, nil
	case *algebra.IsNull:
		c := *n
		var err error
		if c.Expr, err = mapToAggOutput(n.Expr, groupBy, aggRefs); err != nil {
			return nil, err
		}
		return &c, nil
	case *algebra.DistinctFrom:
		c := *n
		var err error
		if c.Left, err = mapToAggOutput(n.Left, groupBy, aggRefs); err != nil {
			return nil, err
		}
		if c.Right, err = mapToAggOutput(n.Right, groupBy, aggRefs); err != nil {
			return nil, err
		}
		return &c, nil
	case *algebra.FuncCall:
		c := *n
		c.Args = make([]algebra.Expr, len(n.Args))
		for i, a := range n.Args {
			m, err := mapToAggOutput(a, groupBy, aggRefs)
			if err != nil {
				return nil, err
			}
			c.Args[i] = m
		}
		return &c, nil
	case *algebra.CaseExpr:
		c := *n
		c.Whens = make([]algebra.CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			wc, err := mapToAggOutput(w.Cond, groupBy, aggRefs)
			if err != nil {
				return nil, err
			}
			wr, err := mapToAggOutput(w.Result, groupBy, aggRefs)
			if err != nil {
				return nil, err
			}
			c.Whens[i] = algebra.CaseWhen{Cond: wc, Result: wr}
		}
		var err error
		if c.Else, err = mapToAggOutput(n.Else, groupBy, aggRefs); err != nil {
			return nil, err
		}
		return &c, nil
	case *algebra.Cast:
		c := *n
		var err error
		if c.Expr, err = mapToAggOutput(n.Expr, groupBy, aggRefs); err != nil {
			return nil, err
		}
		return &c, nil
	case *algebra.SubLink:
		c := *n
		var err error
		if c.Test, err = mapToAggOutput(n.Test, groupBy, aggRefs); err != nil {
			return nil, err
		}
		return &c, nil
	default:
		return nil, fmt.Errorf("plan: cannot map %T over aggregation output", e)
	}
}

// ---------------------------------------------------------------------------
// Binders

// flatRT is the pseudo range-table index for Vars referencing a flat
// computed row (aggregate output).
const flatRT = -2

// rowBinder binds Vars through a range-table layout.
type rowBinder struct {
	p      *Planner
	layout map[int]int
}

func (b *rowBinder) BindVar(v *algebra.Var) (int, error) {
	if v.RT == outputRT {
		return 0, fmt.Errorf("plan: unexpected output-column reference %q", v.Name)
	}
	if v.RT == flatRT {
		return v.Col, nil
	}
	off, ok := b.layout[v.RT]
	if !ok {
		return 0, fmt.Errorf("plan: column %q references an entry outside this fragment", v.Name)
	}
	return off + v.Col, nil
}

func (b *rowBinder) BindSubLink(s *algebra.SubLink) (eval.SubLinkValue, error) {
	return b.p.newSubLinkValue(s)
}

// flatBinder binds flat Vars (RT==flatRT) positionally.
type flatBinder struct {
	p *Planner
}

func (b *flatBinder) BindVar(v *algebra.Var) (int, error) {
	if v.RT != flatRT {
		return 0, fmt.Errorf("plan: unexpected var %q (rt=%d) over computed row", v.Name, v.RT)
	}
	return v.Col, nil
}

func (b *flatBinder) BindSubLink(s *algebra.SubLink) (eval.SubLinkValue, error) {
	return b.p.newSubLinkValue(s)
}

// ---------------------------------------------------------------------------
// Sublinks

// NewSubLinkValue exposes sublink planning for engine-level predicate
// evaluation (DELETE ... WHERE with sublinks).
func NewSubLinkValue(p *Planner, s *algebra.SubLink) (eval.SubLinkValue, error) {
	return p.newSubLinkValue(s)
}

// subLinkValue materializes an uncorrelated subquery lazily, once, and
// serves the SQL semantics of scalar/EXISTS/ANY/ALL sublinks.
type subLinkValue struct {
	node   exec.Node
	kind   types.Kind
	loaded bool
	rows   []types.Row
	err    error
}

func (p *Planner) newSubLinkValue(s *algebra.SubLink) (eval.SubLinkValue, error) {
	pl, err := p.planQuery(s.Query)
	if err != nil {
		return nil, err
	}
	kind := types.KindNull
	if len(s.Query.Schema()) > 0 {
		kind = s.Query.Schema()[0].Type
	}
	return &subLinkValue{node: pl.node, kind: kind}, nil
}

func (s *subLinkValue) load() error {
	if s.loaded {
		return s.err
	}
	s.loaded = true
	s.rows, s.err = exec.Collect(s.node)
	return s.err
}

func (s *subLinkValue) Scalar() (types.Value, error) {
	if err := s.load(); err != nil {
		return types.NullValue, err
	}
	switch len(s.rows) {
	case 0:
		return types.NewNull(s.kind), nil
	case 1:
		return s.rows[0][0], nil
	default:
		return types.NullValue, fmt.Errorf("scalar subquery returned %d rows", len(s.rows))
	}
}

func (s *subLinkValue) Exists() (bool, error) {
	if err := s.load(); err != nil {
		return false, err
	}
	return len(s.rows) > 0, nil
}

func (s *subLinkValue) CompareAny(test types.Value, op string) (types.Tri, error) {
	if err := s.load(); err != nil {
		return types.TriNull, err
	}
	if len(s.rows) == 0 {
		return types.TriFalse, nil
	}
	if test.Null {
		return types.TriNull, nil
	}
	sawNull := false
	for _, r := range s.rows {
		v := r[0]
		if v.Null {
			sawNull = true
			continue
		}
		if !types.Comparable(test.K, v.K) {
			return types.TriNull, fmt.Errorf("cannot compare %s with %s", test.K, v.K)
		}
		if cmpSatisfies(types.Compare(test, v), op) {
			return types.TriTrue, nil
		}
	}
	if sawNull {
		return types.TriNull, nil
	}
	return types.TriFalse, nil
}

func (s *subLinkValue) CompareAll(test types.Value, op string) (types.Tri, error) {
	if err := s.load(); err != nil {
		return types.TriNull, err
	}
	if len(s.rows) == 0 {
		return types.TriTrue, nil
	}
	if test.Null {
		return types.TriNull, nil
	}
	sawNull := false
	for _, r := range s.rows {
		v := r[0]
		if v.Null {
			sawNull = true
			continue
		}
		if !types.Comparable(test.K, v.K) {
			return types.TriNull, fmt.Errorf("cannot compare %s with %s", test.K, v.K)
		}
		if !cmpSatisfies(types.Compare(test, v), op) {
			return types.TriFalse, nil
		}
	}
	if sawNull {
		return types.TriNull, nil
	}
	return types.TriTrue, nil
}

func cmpSatisfies(c int, op string) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	default:
		return false
	}
}

// Explain renders a plan tree as an indented string (EXPLAIN output).
func Explain(n exec.Node) string {
	var sb []byte
	explainNode(n, 0, &sb)
	return string(sb)
}

func explainNode(n exec.Node, depth int, out *[]byte) {
	indent := make([]byte, depth*2)
	for i := range indent {
		indent[i] = ' '
	}
	*out = append(*out, indent...)
	switch x := n.(type) {
	case *exec.Scan:
		*out = append(*out, fmt.Sprintf("Scan (%d rows)\n", len(x.Rows))...)
	case *exec.Filter:
		*out = append(*out, "Filter\n"...)
		explainNode(x.Input, depth+1, out)
	case *exec.Project:
		*out = append(*out, fmt.Sprintf("Project (%d cols)\n", len(x.Exprs))...)
		explainNode(x.Input, depth+1, out)
	case *exec.NestedLoopJoin:
		*out = append(*out, fmt.Sprintf("NestedLoopJoin (%s)\n", joinName(x.Type))...)
		explainNode(x.Left, depth+1, out)
		explainNode(x.Right, depth+1, out)
	case *exec.HashJoin:
		*out = append(*out, fmt.Sprintf("HashJoin (%s, %d keys)\n", joinName(x.Type), len(x.LeftKeys))...)
		explainNode(x.Left, depth+1, out)
		explainNode(x.Right, depth+1, out)
	case *exec.HashAgg:
		*out = append(*out, fmt.Sprintf("HashAggregate (%d groups, %d aggs)\n", len(x.Groups), len(x.Aggs))...)
		explainNode(x.Input, depth+1, out)
	case *exec.Sort:
		*out = append(*out, fmt.Sprintf("Sort (%d keys%s)\n", len(x.Keys), spillTag(x.Spill))...)
		explainNode(x.Input, depth+1, out)
	case *exec.Limit:
		*out = append(*out, "Limit\n"...)
		explainNode(x.Input, depth+1, out)
	case *exec.Distinct:
		*out = append(*out, "Distinct\n"...)
		explainNode(x.Input, depth+1, out)
	case *exec.SetOp:
		*out = append(*out, fmt.Sprintf("SetOp (%s, all=%v)\n", setOpName(x.Kind), x.All)...)
		explainNode(x.Left, depth+1, out)
		explainNode(x.Right, depth+1, out)
	case *vexec.RowSource:
		*out = append(*out, "BatchToRow\n"...)
		explainVNode(x.Input, depth+1, out)
	default:
		*out = append(*out, fmt.Sprintf("%T\n", n)...)
	}
}

// explainVNode renders a vectorized subtree (below a BatchToRow adapter).
func explainVNode(n vexec.Node, depth int, out *[]byte) {
	if t, ok := n.(*vexec.MorselTap); ok {
		// Transparent plumbing: render the worker subtree it wraps.
		explainVNode(t.Input, depth, out)
		return
	}
	indent := make([]byte, depth*2)
	for i := range indent {
		indent[i] = ' '
	}
	*out = append(*out, indent...)
	switch x := n.(type) {
	case *vexec.ColScan:
		if x.HasRuntimeFilters() {
			*out = append(*out, fmt.Sprintf("VecScan (%d rows, RuntimeFilter)\n", x.NumRows)...)
		} else {
			*out = append(*out, fmt.Sprintf("VecScan (%d rows)\n", x.NumRows)...)
		}
	case *vexec.Filter:
		*out = append(*out, "VecFilter\n"...)
		explainVNode(x.Input, depth+1, out)
	case *vexec.Project:
		*out = append(*out, fmt.Sprintf("VecProject (%d cols)\n", len(x.Exprs))...)
		explainVNode(x.Input, depth+1, out)
	case *vexec.HashJoin:
		if x.PublishesFilters() {
			*out = append(*out, fmt.Sprintf("VecHashJoin (%s, %d keys, RuntimeFilter%s)\n", vecJoinName(x.Type), len(x.LeftKeys), spillTag(x.Spill))...)
		} else {
			*out = append(*out, fmt.Sprintf("VecHashJoin (%s, %d keys%s)\n", vecJoinName(x.Type), len(x.LeftKeys), spillTag(x.Spill))...)
		}
		explainVNode(x.Left, depth+1, out)
		explainVNode(x.Right, depth+1, out)
	case *vexec.NLJoin:
		*out = append(*out, fmt.Sprintf("VecNestedLoopJoin (%s)\n", vecJoinName(x.Type))...)
		explainVNode(x.Left, depth+1, out)
		explainVNode(x.Right, depth+1, out)
	case *vexec.HashAgg:
		*out = append(*out, fmt.Sprintf("VecHashAggregate (%d groups, %d aggs%s)\n", len(x.Groups), len(x.Aggs), spillTag(x.Spill))...)
		explainVNode(x.Input, depth+1, out)
	case *vexec.VecSort:
		*out = append(*out, fmt.Sprintf("VecSort (%d keys%s)\n", len(x.Keys), spillTag(x.Spill))...)
		explainVNode(x.Input, depth+1, out)
	case *vexec.VecTopN:
		*out = append(*out, fmt.Sprintf("VecTopN (%d keys, keep %d)\n", len(x.Keys), x.Offset+x.Count)...)
		explainVNode(x.Input, depth+1, out)
	case *vexec.VecLimit:
		*out = append(*out, "VecLimit\n"...)
		explainVNode(x.Input, depth+1, out)
	case *vexec.VecDistinct:
		if tag := spillTag(x.Spill); tag != "" {
			*out = append(*out, fmt.Sprintf("VecDistinct (%s)\n", tag[2:])...)
		} else {
			*out = append(*out, "VecDistinct\n"...)
		}
		explainVNode(x.Input, depth+1, out)
	case *vexec.VecSetOp:
		*out = append(*out, fmt.Sprintf("VecSetOp (%s, all=%v%s)\n", setOpName(x.Kind), x.All, spillTag(x.Spill))...)
		explainVNode(x.Left, depth+1, out)
		explainVNode(x.Right, depth+1, out)
	case *vexec.Exchange:
		*out = append(*out, fmt.Sprintf("Exchange (workers=%d)\n", len(x.Workers))...)
		explainVNode(x.Workers[0], depth+1, out)
	case *vexec.ParallelAgg:
		h := x.Workers[0]
		*out = append(*out, fmt.Sprintf("VecHashAggregate (%d groups, %d aggs%s, workers=%d)\n",
			len(h.Groups), len(h.Aggs), spillTag(h.Spill), len(x.Workers))...)
		explainVNode(h.Input, depth+1, out)
	case *vexec.ParallelSort:
		w := x.Workers[0]
		*out = append(*out, fmt.Sprintf("VecSort (%d keys%s, workers=%d)\n",
			len(w.Keys), spillTag(w.Spill), len(x.Workers))...)
		explainVNode(w.Input, depth+1, out)
	default:
		*out = append(*out, fmt.Sprintf("%T\n", n)...)
	}
}

// spillTag renders the EXPLAIN annotation of a spill-capable operator:
// ", spill=on" when a memory budget can force it to disk, empty
// otherwise.
func spillTag(res spill.Resources) string {
	if res.Enabled() {
		return ", spill=on"
	}
	return ""
}

func vecJoinName(t vexec.JoinType) string {
	switch t {
	case vexec.InnerJoin:
		return "inner"
	case vexec.LeftJoin:
		return "left"
	default:
		return "?"
	}
}

func joinName(t exec.JoinType) string {
	switch t {
	case exec.InnerJoin:
		return "inner"
	case exec.LeftJoin:
		return "left"
	case exec.RightJoin:
		return "right"
	case exec.FullJoin:
		return "full"
	default:
		return "?"
	}
}

func setOpName(k exec.SetOpKind) string {
	switch k {
	case exec.Union:
		return "union"
	case exec.Intersect:
		return "intersect"
	case exec.Except:
		return "except"
	default:
		return "?"
	}
}
