// Package wire defines the permd client/server protocol: a simple
// length-prefixed request/response framing with JSON message bodies.
//
// Every message on the connection is one frame:
//
//	uint32 big-endian body length | body (JSON)
//
// The client sends a Request and reads exactly one Response; requests on
// one connection are processed in order (pipelining is permitted, the
// server answers in receive order). Result values travel as the engine's
// typed values, so a result round-trips the wire without loss and the
// client can re-render it byte-identically to an embedded Database.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"perm/internal/obs"
	"perm/internal/types"
)

// MaxFrame bounds a single frame body (64 MiB) so a corrupt or malicious
// length prefix cannot make either side allocate unboundedly.
const MaxFrame = 64 << 20

// Request operations.
const (
	OpQuery   = "QUERY"   // run SQL, return rows (SELECT / EXPLAIN)
	OpExec    = "EXEC"    // run DDL/DML (semicolon-separated allowed), return affected count
	OpPrepare = "PREPARE" // compile SQL under Name
	OpExecute = "EXECUTE" // run the statement prepared under Name
	OpExplain = "EXPLAIN" // return the physical plan of SQL as text
	OpSet     = "SET"     // set the session option Name to SQL (option value)
	OpPing    = "PING"    // liveness check

	// OpExplainAnalyze executes SQL under instrumentation and returns the
	// plan annotated with per-operator runtime statistics as text.
	OpExplainAnalyze = "EXPLAIN_ANALYZE"

	// OpCancel requests cooperative cancellation of the in-flight query
	// whose engine query ID (as shown in perm_stat_activity) is in Name.
	// Like PING it is handled out of band — it never waits behind the
	// server's worker slots, so a saturated server can still cancel.
	OpCancel = "CANCEL"
)

// Request is one client command.
type Request struct {
	Op   string `json:"op"`
	SQL  string `json:"sql,omitempty"`  // statement text (QUERY/EXEC/PREPARE/EXPLAIN), option value (SET)
	Name string `json:"name,omitempty"` // prepared-statement name (PREPARE/EXECUTE), option name (SET)
}

// Error codes carried by Response.Code on failure frames. The engine
// codes mirror obs (cancellation, statement timeout); the server codes
// describe the service itself. Clients switch on the code — never on
// message text — to decide whether an operation is worth retrying.
const (
	CodeCancelled = obs.CodeCancelled // query cancelled by explicit request
	CodeTimeout   = obs.CodeTimeout   // query exceeded its statement timeout

	// CodeOverloaded: the server's worker slots and admission queue are
	// full; the request was shed without being executed. Retry after
	// backing off.
	CodeOverloaded = "overloaded"
	// CodeDraining: the server is shutting down and no longer accepts
	// work; the request was not executed. Retry against another server
	// (or the same one after it restarts).
	CodeDraining = "draining"
	// CodeInternal: the statement crashed inside the engine (a recovered
	// panic). The statement did not complete; the connection survives.
	CodeInternal = "internal"
)

// Retryable reports whether a response code marks a request the server
// rejected without executing it — safe to retry verbatim, even for
// non-idempotent statements.
func Retryable(code string) bool {
	return code == CodeOverloaded || code == CodeDraining
}

// Response is the server's answer to one Request.
type Response struct {
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`  // set when !OK
	Code string `json:"code,omitempty"` // machine-readable error class, see Code* consts

	// Result payload (QUERY/EXECUTE; Plan for EXPLAIN).
	Columns  []string        `json:"columns,omitempty"`
	Prov     []bool          `json:"prov,omitempty"`
	Rows     [][]types.Value `json:"rows,omitempty"`
	Affected int             `json:"affected,omitempty"`
	Plan     string          `json:"plan,omitempty"`
}

// Encode marshals v into one complete length-prefixed frame. It fails
// without producing bytes when v cannot be marshaled (e.g. ±Inf/NaN
// floats under encoding/json) or exceeds MaxFrame, so a caller can
// substitute an error frame instead of abandoning the connection.
func Encode(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if len(body) > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	copy(frame[4:], body)
	return frame, nil
}

// WriteFrame marshals v and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	frame, err := Encode(v)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed frame body.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// ReadRequest reads and decodes one Request frame.
func ReadRequest(r io.Reader) (*Request, error) {
	body, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("wire: bad request: %v", err)
	}
	return &req, nil
}

// ReadResponse reads and decodes one Response frame.
func ReadResponse(r io.Reader) (*Response, error) {
	body, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("wire: bad response: %v", err)
	}
	return &resp, nil
}

// ErrorResponse builds the failure Response for err, carrying the
// engine's structured error code when err is (or wraps) one.
func ErrorResponse(err error) *Response {
	resp := &Response{Err: err.Error()}
	var qe *obs.QueryError
	if errors.As(err, &qe) {
		resp.Code = qe.Code
	}
	return resp
}

// ErrorResponseCode builds a failure Response with an explicit
// server-level code (overloaded, draining, internal).
func ErrorResponseCode(code, msg string) *Response {
	return &Response{Err: msg, Code: code}
}
