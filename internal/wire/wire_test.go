package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"

	"perm/internal/types"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpQuery, SQL: "SELECT PROVENANCE name FROM shop"},
		{Op: OpExec, SQL: "INSERT INTO shop VALUES ('Aldi', 9)"},
		{Op: OpPrepare, Name: "q1", SQL: "SELECT 1"},
		{Op: OpExecute, Name: "q1"},
		{Op: OpExplain, SQL: "SELECT 1"},
		{Op: OpSet, Name: "disable_vectorized", SQL: "on"},
		{Op: OpPing},
	}
	var buf bytes.Buffer
	for _, r := range reqs {
		if err := WriteFrame(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range reqs {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestResponseRoundTripTypedValues(t *testing.T) {
	want := &Response{
		OK:      true,
		Columns: []string{"name", "n", "f", "d", "b", "nul"},
		Prov:    []bool{false, false, false, false, false, true},
		Rows: [][]types.Value{{
			types.NewString("Merdies"),
			types.NewInt(3),
			types.NewFloat(2.5),
			types.NewDate(19000),
			types.NewBool(true),
			types.NewNull(types.KindInt),
		}},
		Affected: 1,
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, want)
	}
	// Typed values must render identically after the trip.
	for i, v := range got.Rows[0] {
		if v.String() != want.Rows[0][i].String() {
			t.Fatalf("value %d renders %q, want %q", i, v.String(), want.Rows[0][i].String())
		}
	}
}

// TestGoldenFrame pins the on-wire bytes of a fixed request so protocol
// changes are deliberate, not accidental.
func TestGoldenFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Request{Op: OpQuery, SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	// JSON field order follows struct order, so the frame is deterministic.
	golden := "\x00\x00\x00\x1f" + `{"op":"QUERY","sql":"SELECT 1"}`
	if got := buf.String(); got != golden {
		t.Fatalf("frame = %q, want %q", got, golden)
	}
	n := binary.BigEndian.Uint32(buf.Bytes()[:4])
	if int(n) != buf.Len()-4 {
		t.Fatalf("length prefix %d, body %d", n, buf.Len()-4)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadFrame(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("truncated body must fail")
	}
	if _, err := ReadFrame(bytes.NewReader(b[:2])); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated header: %v", err)
	}
}

func TestBadJSONRejected(t *testing.T) {
	var buf bytes.Buffer
	body := []byte(`{"op":`)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := ReadRequest(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("bad JSON must fail")
	}
}
