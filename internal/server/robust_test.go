package server

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"perm"
	"perm/internal/fault"
	"perm/internal/obs"
	"perm/internal/wire"
	"perm/permclient"
)

// leakCheck snapshots the goroutine count and fails the test if more
// goroutines are still alive at cleanup time (after a settling grace
// period). Register it before startServer so the LIFO cleanup order
// runs it after the server has shut down.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d at start, %d at cleanup\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// startConfigured is startServer for tests that need the pre-Serve
// setters: configure runs between New and Serve.
func startConfigured(t *testing.T, db *perm.Database, workers int, configure func(*Server)) (srv *Server, addr string) {
	t.Helper()
	leakCheck(t)
	srv = New(db, workers)
	configure(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func mustInjector(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	inj, err := fault.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestAdmissionQueueSheds: with one worker and a queue depth of one,
// a burst of statements must split into bounded admission (the two
// slots) plus fast, machine-readable, retryable "overloaded"
// rejections — and the server must keep serving afterwards.
func TestAdmissionQueueSheds(t *testing.T) {
	db := bigDB(t, perm.Options{})
	_, addr := startConfigured(t, db, 1, func(s *Server) { s.SetQueueDepth(1) })

	// A query that never completes on its own: admitted statements pin
	// their slot until cancelled, so the split between admitted and shed
	// is deterministic — exactly workers + queue = 2 admitted.
	const longQuery = `SELECT count(*) FROM big a, big b WHERE a.b + b.b > 1`
	shedBefore := obs.ConnsShed.Load()
	const clients = 8
	results := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			c, err := permclient.Dial(addr)
			if err != nil {
				results <- err
				return
			}
			defer c.Close() //nolint:errcheck
			_, err = c.Query(longQuery)
			results <- err
		}()
	}

	// The six arrivals past the admission capacity are shed immediately.
	var shed int
	for shed < clients-2 {
		select {
		case err := <-results:
			var se *permclient.Error
			if !errors.As(err, &se) {
				t.Fatalf("shed request got an unstructured error: %v", err)
			}
			if se.Code != wire.CodeOverloaded || !se.Retryable() {
				t.Fatalf("shed request: code = %q retryable = %v, want retryable %q",
					se.Code, se.Retryable(), wire.CodeOverloaded)
			}
			shed++
		case <-time.After(20 * time.Second):
			t.Fatalf("only %d of %d over-capacity requests were shed", shed, clients-2)
		}
	}
	if obs.ConnsShed.Load() == shedBefore {
		t.Fatal("shed requests not counted in obs.ConnsShed")
	}

	// Unpin the two admitted statements: cancel whatever is executing
	// until both issuers have returned (the queued one starts executing
	// once the first is cancelled).
	admitted := 0
	deadline := time.Now().Add(30 * time.Second)
	for admitted < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 2 admitted statements returned", admitted)
		}
		res, err := db.Query(`SELECT query_id, query FROM perm_stat_activity WHERE phase = 'execute'`)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			if row[1].String() == longQuery {
				db.Cancel(row[0].String()) //nolint:errcheck — may have just finished
			}
		}
		select {
		case err := <-results:
			if err == nil || !strings.Contains(err.Error(), "cancelled") {
				t.Fatalf("admitted statement error = %v, want a cancellation error", err)
			}
			admitted++
		case <-time.After(2 * time.Millisecond):
		}
	}

	// The pool is drained; the server accepts and executes new work.
	c := dial(t, addr)
	res, err := c.Query(`SELECT count(*) FROM big`)
	if err != nil || res.Rows[0][0].String() != "65536" {
		t.Fatalf("server unusable after shedding: %v %v", res, err)
	}
}

// TestDrainingRequestsGetRetryableError: a request arriving on an
// established connection after Shutdown starts must get a structured
// retryable "draining" error frame, not a dropped socket.
func TestDrainingRequestsGetRetryableError(t *testing.T) {
	leakCheck(t)
	db := bigDB(t, perm.Options{})
	srv := New(db, 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	runner := dial(t, addr)
	bystander := dial(t, addr)
	if err := bystander.Ping(); err != nil {
		t.Fatal(err)
	}

	// A multi-second query holds the drain open.
	const longQuery = `SELECT count(*) FROM big a, big b WHERE a.b + b.b > 1`
	errc := make(chan error, 1)
	go func() {
		_, err := runner.Query(longQuery)
		errc <- err
	}()
	deadline := time.Now().Add(20 * time.Second)
	var id string
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("long query never appeared in perm_stat_activity")
		}
		res, err := db.Query(`SELECT query_id, query FROM perm_stat_activity WHERE phase = 'execute'`)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			if row[1].String() == longQuery {
				id = row[0].String()
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// The bystander's connection is still open; its request must be
	// answered with the draining code, unexecuted.
	err = bystander.Ping()
	var se *permclient.Error
	if !errors.As(err, &se) {
		t.Fatalf("drain-time request: err = %v, want a structured server error", err)
	}
	if se.Code != wire.CodeDraining || !se.Retryable() {
		t.Fatalf("drain-time request: code = %q retryable = %v, want retryable %q",
			se.Code, se.Retryable(), wire.CodeDraining)
	}

	// Release the drain: cancel the long query and collect everything.
	if err := db.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("drained query error = %v, want a cancellation error", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v after graceful shutdown", err)
	}
}

// TestDispatchPanicIsolation: a statement that panics inside the engine
// must come back as a structured "internal" wire error with the
// connection, its session, and the server all intact.
func TestDispatchPanicIsolation(t *testing.T) {
	leakCheck(t)
	db := paperDB(t)
	addr := startServer(t, db, 2)
	c := dial(t, addr)

	restore := fault.Set(mustInjector(t, "server.dispatch:1"))
	defer restore()
	before := obs.PanicsRecovered.Load()
	_, err := c.Query(`SELECT name FROM shop`)
	var se *permclient.Error
	if !errors.As(err, &se) {
		t.Fatalf("panicking statement: err = %v, want a structured server error", err)
	}
	if se.Code != wire.CodeInternal || !strings.Contains(se.Msg, "panicked") {
		t.Fatalf("panicking statement: code = %q msg = %q, want %q with a panic message",
			se.Code, se.Msg, wire.CodeInternal)
	}
	if se.Retryable() {
		t.Fatal("internal errors must not be marked retryable")
	}
	if obs.PanicsRecovered.Load() <= before {
		t.Fatal("recovered panic not counted")
	}
	// Same connection, same session: the next statement succeeds.
	res, err := c.Query(`SELECT count(*) FROM shop`)
	if err != nil || res.Rows[0][0].String() != "2" {
		t.Fatalf("connection dead after recovered panic: %v %v", res, err)
	}
}

// TestMaxConnectionsRefusal: a connection over the limit has its first
// request answered with a retryable "overloaded" error; existing
// connections are untouched, and closing one frees the slot.
func TestMaxConnectionsRefusal(t *testing.T) {
	db := paperDB(t)
	_, addr := startConfigured(t, db, 2, func(s *Server) { s.SetMaxConnections(1) })

	c1 := dial(t, addr)
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	c2, err := permclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close() //nolint:errcheck
	err = c2.Ping()
	var se *permclient.Error
	if !errors.As(err, &se) {
		t.Fatalf("over-limit connection: err = %v, want a structured refusal", err)
	}
	if se.Code != wire.CodeOverloaded || !se.Retryable() {
		t.Fatalf("over-limit connection: code = %q retryable = %v, want retryable %q",
			se.Code, se.Retryable(), wire.CodeOverloaded)
	}
	if err := c1.Ping(); err != nil {
		t.Fatalf("admitted connection broken by a refusal: %v", err)
	}
	// Freeing the slot admits the next connection.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := permclient.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		err = c3.Ping()
		c3.Close() //nolint:errcheck
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIdleTimeoutClosesConnection: a connection idle past the deadline
// is closed; new connections are unaffected.
func TestIdleTimeoutClosesConnection(t *testing.T) {
	db := paperDB(t)
	_, addr := startConfigured(t, db, 2, func(s *Server) { s.SetIdleTimeout(150 * time.Millisecond) })

	c, err := permclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := c.Ping(); err == nil {
		t.Fatal("connection survived idling past the deadline")
	}
	c2 := dial(t, addr)
	if err := c2.Ping(); err != nil {
		t.Fatalf("fresh connection after an idle close: %v", err)
	}
}

// TestConnDropClientRetry: the server dying mid-response-frame (fault
// tap conn.drop) leaves the client's connection desynced; a client
// configured with retries must redial and transparently re-run the
// idempotent request, returning the same result a healthy server gives.
func TestConnDropClientRetry(t *testing.T) {
	leakCheck(t)
	db := paperDB(t)
	addr := startServer(t, db, 2)
	c, err := permclient.DialConfig(addr, permclient.Config{
		MaxRetries: 2,
		RetryBase:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	const query = `SELECT name, numempl FROM shop ORDER BY name`
	want := db.MustQuery(query)
	restore := fault.Set(mustInjector(t, "conn.drop:1"))
	defer restore()
	retriesBefore := obs.ClientRetries.Load()
	got, err := c.Query(query)
	if err != nil {
		t.Fatalf("query across a dropped connection: %v", err)
	}
	if got.String() != want.String() {
		t.Fatalf("retried query diverges:\nremote:\n%s\nlocal:\n%s", got, want)
	}
	if obs.ClientRetries.Load() <= retriesBefore {
		t.Fatal("redial retry not counted in obs.ClientRetries")
	}

	// Without retries the same fault surfaces as a hard error.
	restore2 := fault.Set(mustInjector(t, "conn.drop:1"))
	defer restore2()
	c0, err := permclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close() //nolint:errcheck
	if _, err := c0.Query(query); err == nil {
		t.Fatal("dropped connection with retries disabled returned no error")
	}
}
