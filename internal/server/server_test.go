package server

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"perm"
	"perm/permclient"
)

// startServer runs a server over db on a random port and returns a
// connected client plus the address. Everything is cleaned up by t,
// including a goroutine-leak check that runs after the shutdown.
func startServer(t *testing.T, db *perm.Database, workers int) (addr string) {
	t.Helper()
	leakCheck(t)
	srv := New(db, workers)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

func dial(t *testing.T, addr string) *permclient.Client {
	t.Helper()
	c, err := permclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck
	return c
}

func paperDB(t *testing.T) *perm.Database {
	t.Helper()
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE shop (name text, numempl int)`)
	db.MustExec(`CREATE TABLE sales (sname text, itemid int)`)
	db.MustExec(`INSERT INTO shop VALUES ('Merdies', 3); INSERT INTO shop VALUES ('Edeka', 7)`)
	db.MustExec(`INSERT INTO sales VALUES ('Merdies', 1); INSERT INTO sales VALUES ('Merdies', 2); INSERT INTO sales VALUES ('Edeka', 1)`)
	return db
}

// TestQueryRoundTripByteIdentical: a remote query must render exactly as
// the embedded database renders it, provenance markers included.
func TestQueryRoundTripByteIdentical(t *testing.T) {
	db := paperDB(t)
	c := dial(t, startServer(t, db, 4))

	queries := []string{
		`SELECT name, numempl FROM shop ORDER BY name`,
		`SELECT PROVENANCE name FROM shop WHERE numempl > 2 ORDER BY name`,
		`SELECT PROVENANCE s.name, count(*) AS cnt FROM shop s, sales sa WHERE s.name = sa.sname GROUP BY s.name ORDER BY s.name`,
		`SELECT name FROM shop UNION SELECT sname FROM sales ORDER BY name`,
	}
	for _, q := range queries {
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := c.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s:\nremote:\n%s\nlocal:\n%s", q, got, want)
		}
		if got.NumProvColumns() != want.NumProvColumns() {
			t.Errorf("%s: prov columns %d != %d", q, got.NumProvColumns(), want.NumProvColumns())
		}
	}
}

func TestExecAndErrors(t *testing.T) {
	c := dial(t, startServer(t, paperDB(t), 2))

	if _, n, err := c.Exec(`INSERT INTO shop VALUES ('Spar', 1)`); err != nil || n != 1 {
		t.Fatalf("INSERT: n=%d err=%v", n, err)
	}
	res, err := c.Query(`SELECT count(*) FROM shop`)
	if err != nil || res.Rows[0][0].Int() != 3 {
		t.Fatalf("count: %v %v", res, err)
	}
	// Errors must come back as errors, with the connection still usable.
	if _, err := c.Query(`SELECT nope FROM shop`); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("bad query error: %v", err)
	}
	if _, _, err := c.Exec(`DROP TABLE missing`); err == nil {
		t.Fatal("bad exec must fail")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after errors: %v", err)
	}
}

// TestUnencodableResultKeepsConnection: a result encoding/json cannot
// marshal (here +Inf from a double overflow) must come back as an error
// response, not kill the connection and its session.
func TestUnencodableResultKeepsConnection(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE d (x double); INSERT INTO d VALUES (1e308)`)
	c := dial(t, startServer(t, db, 2))

	if _, err := c.Query(`SELECT x * 10 FROM d`); err == nil ||
		!strings.Contains(err.Error(), "cannot encode response") {
		t.Fatalf("want encode error, got %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after encode failure: %v", err)
	}
	if res, err := c.Query(`SELECT count(*) FROM d`); err != nil || res.Rows[0][0].Int() != 1 {
		t.Fatalf("session dead after encode failure: %v %v", res, err)
	}
}

func TestPrepareExecuteOverWire(t *testing.T) {
	c := dial(t, startServer(t, paperDB(t), 2))

	if err := c.Prepare("hot", `SELECT PROVENANCE name FROM shop ORDER BY name`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := c.Execute("hot")
		if err != nil || len(res.Rows) != 2 {
			t.Fatalf("execute %d: %v %v", i, res, err)
		}
	}
	// DDL between executions: the statement must recompile, not fail.
	if _, _, err := c.Exec(`CREATE TABLE extra (x int)`); err != nil {
		t.Fatal(err)
	}
	if res, err := c.Execute("hot"); err != nil || len(res.Rows) != 2 {
		t.Fatalf("execute after DDL: %v %v", res, err)
	}
	if _, err := c.Execute("never-prepared"); err == nil {
		t.Fatal("unknown prepared name must fail")
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	addr := startServer(t, paperDB(t), 4)
	c1, c2 := dial(t, addr), dial(t, addr)

	if err := c1.Prepare("mine", `SELECT 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Execute("mine"); err == nil {
		t.Fatal("prepared statement leaked across connections")
	}
	// Session options are isolated too, but the data is shared.
	if err := c1.Set("disable_vectorized", "on"); err != nil {
		t.Fatal(err)
	}
	if _, n, err := c1.Exec(`INSERT INTO shop VALUES ('Shared', 2)`); err != nil || n != 1 {
		t.Fatalf("insert: %v", err)
	}
	res, err := c2.Query(`SELECT count(*) FROM shop`)
	if err != nil || res.Rows[0][0].Int() != 3 {
		t.Fatalf("shared data not visible: %v %v", res, err)
	}
}

func TestExplainAndDialect(t *testing.T) {
	c := dial(t, startServer(t, paperDB(t), 2))

	plan, err := c.Explain(`SELECT name FROM shop WHERE numempl > 2`)
	if err != nil || plan == "" {
		t.Fatalf("explain: %q %v", plan, err)
	}
	// The service dialect works through EXEC.
	if _, _, err := c.Exec(`PREPARE p AS SELECT name FROM shop ORDER BY name`); err != nil {
		t.Fatal(err)
	}
	res, _, err := c.Exec(`EXECUTE p`)
	if err != nil || res == nil || len(res.Rows) != 2 {
		t.Fatalf("dialect EXECUTE: %v %v", res, err)
	}
	if _, _, err := c.Exec(`SET disable_optimizer = on`); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClients hammers one server from many connections mixing
// reads, writes and prepared statements. Run under -race this is the
// end-to-end concurrency gate for the service.
func TestConcurrentClients(t *testing.T) {
	db := paperDB(t)
	addr := startServer(t, db, 4)

	const clients = 8
	const iters = 30
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := permclient.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close() //nolint:errcheck
			stmt := fmt.Sprintf("s%d", g)
			if err := c.Prepare(stmt, `SELECT PROVENANCE name FROM shop WHERE numempl >= 0`); err != nil {
				t.Error(err)
				return
			}
			table := fmt.Sprintf("scratch_%d", g)
			if _, _, err := c.Exec(fmt.Sprintf(`CREATE TABLE %s (x int)`, table)); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					if _, err := c.Query(`SELECT count(*) FROM shop`); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := c.Execute(stmt); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, _, err := c.Exec(fmt.Sprintf(`INSERT INTO %s VALUES (%d)`, table, i)); err != nil {
						t.Error(err)
						return
					}
				case 3:
					res, err := c.Query(fmt.Sprintf(`SELECT count(*) FROM %s`, table))
					if err != nil {
						t.Error(err)
						return
					}
					if got := res.Rows[0][0].Int(); got < 1 {
						t.Errorf("client %d: scratch count %d", g, got)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The shared cache must have seen real reuse across connections.
	st := db.QueryCacheStats()
	if st.Hits == 0 {
		t.Errorf("no cache hits across concurrent clients: %+v", st)
	}
}

// TestGracefulShutdown: Shutdown must let an in-flight request finish,
// then close idle connections; new connections are refused.
func TestGracefulShutdown(t *testing.T) {
	db := paperDB(t)
	srv := New(db, 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	c, err := permclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v after graceful shutdown", err)
	}
	// The drained connection is closed; requests on it now fail.
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded after shutdown")
	}
	// New connections are refused (or immediately closed).
	if c2, err := permclient.Dial(addr); err == nil {
		defer c2.Close() //nolint:errcheck
		if err := c2.Ping(); err == nil {
			t.Fatal("server still serving after shutdown")
		}
	}
}

// TestWorkerPoolBoundsConcurrency: with one worker, two slow statements
// from two connections must serialize.
func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE nums (x int)`)
	for i := 0; i < 2000; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO nums VALUES (%d)`, i))
	}
	addr := startServer(t, db, 1)

	// A moderately slow provenance aggregate over a self-join.
	slow := `SELECT PROVENANCE count(*) FROM nums a, nums b WHERE a.x = b.x`
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := permclient.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close() //nolint:errcheck
			if _, err := c.Query(slow); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
