package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"perm"
	"perm/permclient"
)

// bigDB builds a ~65k-row table by repeated self-insertion: a cross
// join over it yields billions of pairs, far beyond what completes
// before a cancel lands.
func bigDB(t *testing.T, opts perm.Options) *perm.Database {
	t.Helper()
	db := perm.NewDatabaseWithOptions(opts)
	db.MustExec(`CREATE TABLE big (a int, b int)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big VALUES `)
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i%7)
	}
	db.MustExec(sb.String())
	for i := 0; i < 10; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO big SELECT a + %d, b FROM big`, 64<<i))
	}
	return db
}

// TestCancelOverWire runs a multi-second query on one connection,
// discovers its ID through perm_stat_activity on a second connection,
// cancels it over the wire, and checks the issuer gets a clean error
// while the server (and other sessions) keep working.
func TestCancelOverWire(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running cancellation test")
	}
	db := bigDB(t, perm.Options{})
	// workers=1: the long query occupies the only worker slot, so the
	// cancel only lands because PING/CANCEL bypass the pool.
	addr := startServer(t, db, 1)
	runner := dial(t, addr)
	admin := dial(t, addr)

	const longQuery = `SELECT count(*) FROM big a, big b WHERE a.b + b.b > 1`
	errc := make(chan error, 1)
	go func() {
		_, err := runner.Query(longQuery)
		errc <- err
	}()

	deadline := time.Now().Add(20 * time.Second)
	var id string
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("long query never appeared in perm_stat_activity")
		}
		if err := admin.Ping(); err != nil { // liveness must bypass the saturated pool
			t.Fatalf("ping during long query: %v", err)
		}
		res, err := db.Query(`SELECT query_id, query FROM perm_stat_activity WHERE phase = 'execute'`)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			if row[1].String() == longQuery {
				id = row[0].String()
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := admin.Cancel("q-does-not-exist"); err == nil {
		t.Fatal("cancelling an unknown ID must fail")
	}
	if err := admin.Cancel(id); err != nil {
		t.Fatalf("Cancel(%s): %v", id, err)
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "cancelled") {
			t.Fatalf("cancelled query error = %v, want a cancellation error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled query did not return")
	}
	// The worker slot is free again and the connection is intact.
	res, err := runner.Query(`SELECT count(*) FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].String(); got != "65536" {
		t.Fatalf("post-cancel query = %s, want 65536", got)
	}
}

// TestSystemViewsOverWire: the introspection relations answer over the
// wire protocol like any other table.
func TestSystemViewsOverWire(t *testing.T) {
	db := paperDB(t)
	addr := startServer(t, db, 2)
	c := dial(t, addr)
	if _, err := c.Query(`SELECT name FROM shop`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`SELECT query_id, phase, query FROM perm_stat_activity`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("perm_stat_activity over wire rows = %d, want 1 (the observer)", len(res.Rows))
	}
	res, err = c.Query(`SELECT calls FROM perm_stat_statements WHERE query = 'select name from shop'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "1" {
		t.Fatalf("perm_stat_statements over wire: %v", res.Rows)
	}
	res, err = c.Query(`SELECT value FROM perm_metrics WHERE name = 'perm_build_info'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("perm_metrics over wire rows = %d, want 1", len(res.Rows))
	}
}

// TestSlowLogQueryCorrelation: with tracing on, slow-log entries carry
// the engine query ID and the phase span breakdown, correlating the log
// with perm_traces.
func TestSlowLogQueryCorrelation(t *testing.T) {
	db := paperDB(t).WithOptions(perm.Options{TraceSample: 1})
	srv := New(db, 2)
	var buf syncBuffer
	srv.SetSlowQueryLog(0, &buf)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	})
	c := dial(t, ln.Addr().String())
	if _, err := c.Query(`SELECT name FROM shop ORDER BY name`); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(strings.Split(strings.TrimSpace(buf.String()), "\n")[0])
	var e slowEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("bad slow-log line %q: %v", line, err)
	}
	if !strings.HasPrefix(e.QueryID, "q") {
		t.Fatalf("slow-log query_id = %q, want an engine query ID", e.QueryID)
	}
	for _, phase := range []string{"parse=", "execute="} {
		if !strings.Contains(e.Spans, phase) {
			t.Fatalf("slow-log spans = %q, want %s", e.Spans, phase)
		}
	}
	// The logged ID resolves in perm_traces.
	res, err := permclient.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close() //nolint:errcheck
	tr, err := res.Query(fmt.Sprintf(`SELECT count(*) FROM perm_traces WHERE query_id = '%s'`, e.QueryID))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Rows[0][0].String(); got == "0" {
		t.Fatalf("query %s from the slow log has no trace", e.QueryID)
	}
}
