package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"perm/internal/qcache"
)

// TestExplainAnalyzeOverWire pins the EXPLAIN_ANALYZE op: the annotated
// report comes back as plan text, and the query result itself stays
// byte-identical when run normally afterwards.
func TestExplainAnalyzeOverWire(t *testing.T) {
	db := paperDB(t)
	c := dial(t, startServer(t, db, 2))

	const q = `SELECT PROVENANCE name FROM shop WHERE numempl > 2 ORDER BY name`
	report, err := c.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(actual ", "Execution time: ", "Fingerprint: " + qcache.Fingerprint(q)} {
		if !strings.Contains(report, want) {
			t.Fatalf("wire report lacks %q:\n%s", want, report)
		}
	}
	// The dialect form over OpExec returns the same annotations as rows.
	res, _, err := c.Exec("EXPLAIN ANALYZE " + q)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Rows) == 0 || res.Columns[0] != "plan" {
		t.Fatalf("dialect EXPLAIN ANALYZE returned no plan rows: %+v", res)
	}
}

// syncBuffer is a bytes.Buffer safe for the concurrent writes the server
// makes from connection handlers.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServerMetricsAndSlowLog drives requests through a server with the
// slow-query log armed at threshold zero and checks both telemetry
// surfaces: the JSON log lines (fingerprint, duration, rows, cache
// outcome) and the registered metric families.
func TestServerMetricsAndSlowLog(t *testing.T) {
	db := paperDB(t)
	srv := New(db, 2)
	var buf syncBuffer
	srv.SetSlowQueryLog(0, &buf) // threshold 0: log every statement

	reg := db.Metrics()
	srv.RegisterMetrics(reg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	})
	c := dial(t, ln.Addr().String())

	const q = `SELECT name FROM shop ORDER BY name`
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(q); err != nil { // second run: cache hit
		t.Fatal(err)
	}
	if _, err := c.Query(`SELECT broken FROM nowhere`); err == nil {
		t.Fatal("expected an error response")
	}

	var entries []slowEntry
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e slowEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad slow-log line %q: %v", line, err)
		}
		entries = append(entries, e)
	}
	if len(entries) != 3 {
		t.Fatalf("expected 3 slow-log entries, got %d: %s", len(entries), buf.String())
	}
	first, second, failed := entries[0], entries[1], entries[2]
	if first.Fingerprint != qcache.Fingerprint(q) || first.Fingerprint != second.Fingerprint {
		t.Fatalf("fingerprint mismatch: %q vs %q", first.Fingerprint, second.Fingerprint)
	}
	if first.CacheHit {
		t.Fatal("first execution logged as a cache hit")
	}
	if !second.CacheHit {
		t.Fatal("second execution not logged as a cache hit")
	}
	if first.Rows != 2 || second.Rows != 2 {
		t.Fatalf("row counts wrong: %d, %d", first.Rows, second.Rows)
	}
	if failed.Err == "" {
		t.Fatal("failed statement logged without err")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE perm_server_connections_total counter",
		"# TYPE perm_server_requests_total counter",
		"# TYPE perm_server_errors_total counter",
		"# TYPE perm_server_slow_queries_total counter",
		"# TYPE perm_query_duration_seconds histogram",
		"perm_query_duration_seconds_bucket{le=\"+Inf\"} 3",
		"perm_server_requests_total 3",
		"perm_server_errors_total 1",
		"perm_server_slow_queries_total 3",
		"perm_server_connections_active 1",
		"perm_server_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, text)
		}
	}
}
