// Package server implements the permd query service: a TCP server
// speaking the length-prefixed wire protocol (package wire), with one
// session per connection, a worker pool bounding concurrently executing
// statements, and graceful shutdown.
//
// All connections share one *perm.Database — the same catalog, data and
// compiled-query cache — so a statement compiled for one client is a
// cache hit for every other client until DDL/DML moves the catalog
// version. Session state (options, prepared statements) stays private to
// each connection.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"perm"
	"perm/internal/obs"
	"perm/internal/qcache"
	"perm/internal/session"
	"perm/internal/wire"
)

// slowLog is the slow-query log configuration (immutable once set; the
// pointer swaps atomically so handlers never lock to check it).
type slowLog struct {
	threshold time.Duration
	mu        sync.Mutex // serializes writes to w
	w         io.Writer
}

// Server serves the Perm wire protocol over TCP.
type Server struct {
	db  *perm.Database
	sem chan struct{} // worker pool: bounds concurrently executing statements

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	connWg sync.WaitGroup // running connection handlers
	reqWg  sync.WaitGroup // in-flight requests (for graceful drain)

	// Request-path metrics. Counted per request/connection — never
	// per-row — so the observation cost is one atomic add per event.
	connsTotal  obs.Counter
	connsActive obs.Gauge
	reqsTotal   obs.Counter
	errsTotal   obs.Counter
	slowTotal   obs.Counter
	drainGauge  obs.Gauge
	reqDur      *obs.Histogram

	slow atomic.Pointer[slowLog]
}

// New returns a server over db. workers bounds how many statements
// execute concurrently across all connections (<= 0: GOMAXPROCS).
func New(db *perm.Database, workers int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Server{
		db:    db,
		sem:   make(chan struct{}, workers),
		conns: make(map[net.Conn]struct{}),
		// Request latency buckets from 100µs to 10s (observed in
		// nanoseconds, exposed in seconds).
		reqDur: obs.NewHistogram(
			100_000, 1_000_000, 5_000_000, 10_000_000, 50_000_000,
			100_000_000, 500_000_000, 1_000_000_000, 5_000_000_000, 10_000_000_000),
	}
}

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return cap(s.sem) }

// Draining reports whether Shutdown has started (health endpoints use
// this to fail readiness before the listener closes).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// RegisterMetrics adds the server's metric families (connection and
// request counters, the request-latency histogram) to a registry —
// typically the one db.Metrics() returned, so one /metrics endpoint
// exposes engine and server state together.
func (s *Server) RegisterMetrics(r *obs.Registry) {
	r.CounterVar("perm_server_connections_total", "Client connections accepted.", "", &s.connsTotal)
	r.GaugeVar("perm_server_connections_active", "Client connections currently open.", "", &s.connsActive)
	r.CounterVar("perm_server_requests_total", "Requests dispatched.", "", &s.reqsTotal)
	r.CounterVar("perm_server_errors_total", "Requests answered with an error.", "", &s.errsTotal)
	r.CounterVar("perm_server_slow_queries_total", "Requests over the slow-query threshold.", "", &s.slowTotal)
	r.GaugeVar("perm_server_draining", "1 while the server is shutting down.", "", &s.drainGauge)
	r.HistogramVar("perm_query_duration_seconds", "Request execution latency.", s.reqDur, 1e-9)
}

// SetSlowQueryLog arms the slow-query log: every request that runs
// longer than threshold is recorded as one JSON line on w (the write is
// serialized; w need not be safe for concurrent use). A zero threshold
// logs every request; a nil w disarms the log.
func (s *Server) SetSlowQueryLog(threshold time.Duration, w io.Writer) {
	if w == nil {
		s.slow.Store(nil)
		return
	}
	s.slow.Store(&slowLog{threshold: threshold, w: w})
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close() //nolint:errcheck
		return errors.New("server is shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close() //nolint:errcheck
			continue
		}
		s.conns[conn] = struct{}{}
		s.connWg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown gracefully stops the server: it stops accepting, waits for
// in-flight requests to finish (bounded by ctx), then closes every
// connection and waits for the handlers to exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	s.drainGauge.Set(1)
	if ln != nil {
		ln.Close() //nolint:errcheck
	}

	// Wait for in-flight requests (not idle connections) up to ctx.
	drained := make(chan struct{})
	go func() { s.reqWg.Wait(); close(drained) }()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Unblock idle (or overrunning) connection readers and collect the
	// handlers.
	s.mu.Lock()
	for c := range s.conns {
		c.Close() //nolint:errcheck
	}
	s.mu.Unlock()
	s.connWg.Wait()
	return err
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.connWg.Done()
	s.connsTotal.Inc()
	s.connsActive.Inc()
	sess := session.New(s.db)
	defer sess.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close() //nolint:errcheck
		s.connsActive.Dec()
	}()

	for {
		req, err := wire.ReadRequest(conn)
		if err != nil {
			return // client went away (or shutdown closed us)
		}
		// Register the request under the lock Shutdown uses to flip
		// draining: either the Add lands before the drain wait starts
		// (Shutdown waits for us), or we observe draining and drop the
		// request unexecuted. Never both, never neither.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return
		}
		s.reqWg.Add(1)
		s.mu.Unlock()
		// PING and CANCEL never wait behind worker slots: a saturated
		// server must still answer liveness checks, and cancellation of
		// the very queries occupying the slots must be able to land.
		outOfBand := req.Op == wire.OpPing || req.Op == wire.OpCancel
		if !outOfBand {
			s.sem <- struct{}{} // acquire a worker slot
		}
		slow := s.slow.Load()
		var pre queryPrecondition
		if slow != nil {
			pre = s.precondition(sess, req)
		}
		start := time.Now()
		resp := s.dispatch(sess, req)
		dur := time.Since(start)
		if !outOfBand {
			<-s.sem
		}
		s.reqsTotal.Inc()
		s.reqDur.Observe(dur.Nanoseconds())
		if resp.Err != "" {
			s.errsTotal.Inc()
		}
		if slow != nil && dur >= slow.threshold {
			s.slowTotal.Inc()
			s.logSlow(slow, sess, req, resp, dur, pre)
		}
		// A response that cannot be encoded (unmarshalable values, frame
		// too large) becomes an error response; only real I/O failures
		// tear down the connection (and with it the session).
		frame, err := wire.Encode(resp)
		if err != nil {
			frame, err = wire.Encode(wire.ErrorResponse(fmt.Errorf("cannot encode response: %v", err)))
			if err != nil {
				s.reqWg.Done()
				return
			}
		}
		_, err = conn.Write(frame)
		s.reqWg.Done()
		if err != nil {
			return
		}
	}
}

// dispatch executes one request against the connection's session.
func (s *Server) dispatch(sess *session.Session, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{OK: true}
	case wire.OpCancel:
		// Cancellation targets the engine-wide active-query registry, so
		// any connection can cancel any session's query by ID.
		if err := s.db.Cancel(req.Name); err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true}
	case wire.OpQuery:
		res, err := sess.Query(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return resultResponse(res)
	case wire.OpExec:
		out, err := sess.Run(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		if out.Result != nil {
			return resultResponse(out.Result)
		}
		return &wire.Response{OK: true, Affected: out.Affected}
	case wire.OpPrepare:
		if err := sess.Prepare(req.Name, req.SQL); err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true}
	case wire.OpExecute:
		res, err := sess.Execute(req.Name)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return resultResponse(res)
	case wire.OpExplain:
		plan, err := sess.Explain(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true, Plan: plan}
	case wire.OpExplainAnalyze:
		plan, err := sess.ExplainAnalyze(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true, Plan: plan}
	case wire.OpSet:
		if err := sess.SetOption(req.Name, req.SQL); err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true}
	default:
		return wire.ErrorResponse(fmt.Errorf("unknown op %q", req.Op))
	}
}

func resultResponse(res *perm.Result) *wire.Response {
	return &wire.Response{
		OK:      true,
		Columns: res.Columns,
		Prov:    res.ProvColumns,
		Rows:    res.RawRows(),
	}
}

// queryPrecondition is state captured before a request executes, so the
// slow-query log can report per-statement deltas. Only taken when the
// slow-query log is armed.
type queryPrecondition struct {
	cacheHit bool
	stats    perm.QueryStats // session budget counters before execution
}

func (s *Server) precondition(sess *session.Session, req *wire.Request) queryPrecondition {
	db := sess.DB()
	return queryPrecondition{
		cacheHit: req.SQL != "" && db.QueryCached(req.SQL),
		stats:    db.SessionQueryStats(),
	}
}

// slowEntry is one slow-query log line.
type slowEntry struct {
	Time         string  `json:"ts"`
	Op           string  `json:"op"`
	QueryID      string  `json:"query_id,omitempty"` // engine query ID (join key for perm_traces)
	Fingerprint  string  `json:"fingerprint,omitempty"`
	DurationMS   float64 `json:"duration_ms"`
	Rows         int     `json:"rows"`
	CacheHit     bool    `json:"cache_hit"`
	SpilledBytes int64   `json:"spilled_bytes"`
	SpillEvents  uint64  `json:"spill_events"`
	Parallelism  int     `json:"parallelism"`
	Spans        string  `json:"spans,omitempty"` // phase breakdown, when the query was trace-sampled
	Err          string  `json:"err,omitempty"`
}

// logSlow emits one JSON line for a request that crossed the slow-query
// threshold. Spill counters are the session budget's delta across the
// statement, so concurrent sessions don't bleed into each other.
func (s *Server) logSlow(sl *slowLog, sess *session.Session, req *wire.Request, resp *wire.Response, dur time.Duration, pre queryPrecondition) {
	db := sess.DB()
	post := db.SessionQueryStats()
	e := slowEntry{
		Time:         time.Now().UTC().Format(time.RFC3339Nano),
		Op:           req.Op,
		DurationMS:   float64(dur.Microseconds()) / 1000,
		Rows:         len(resp.Rows),
		CacheHit:     pre.cacheHit,
		SpilledBytes: post.BytesSpilled - pre.stats.BytesSpilled,
		SpillEvents:  post.SpillEvents - pre.stats.SpillEvents,
		Parallelism:  db.Opts().Parallelism,
		Err:          resp.Err,
	}
	if req.SQL != "" {
		e.Fingerprint = qcache.Fingerprint(req.SQL)
	}
	if info := db.LastQueryInfo(); info.ID != "" {
		e.QueryID = info.ID
		e.Spans = info.Spans
	}
	if resp.Rows == nil {
		e.Rows = resp.Affected
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.w.Write(append(line, '\n')) //nolint:errcheck — logging is best-effort
}
