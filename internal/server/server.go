// Package server implements the permd query service: a TCP server
// speaking the length-prefixed wire protocol (package wire), with one
// session per connection, a worker pool bounding concurrently executing
// statements, and graceful shutdown.
//
// All connections share one *perm.Database — the same catalog, data and
// compiled-query cache — so a statement compiled for one client is a
// cache hit for every other client until DDL/DML moves the catalog
// version. Session state (options, prepared statements) stays private to
// each connection.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"

	"perm"
	"perm/internal/session"
	"perm/internal/wire"
)

// Server serves the Perm wire protocol over TCP.
type Server struct {
	db  *perm.Database
	sem chan struct{} // worker pool: bounds concurrently executing statements

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	connWg sync.WaitGroup // running connection handlers
	reqWg  sync.WaitGroup // in-flight requests (for graceful drain)
}

// New returns a server over db. workers bounds how many statements
// execute concurrently across all connections (<= 0: GOMAXPROCS).
func New(db *perm.Database, workers int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Server{
		db:    db,
		sem:   make(chan struct{}, workers),
		conns: make(map[net.Conn]struct{}),
	}
}

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return cap(s.sem) }

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close() //nolint:errcheck
		return errors.New("server is shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close() //nolint:errcheck
			continue
		}
		s.conns[conn] = struct{}{}
		s.connWg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown gracefully stops the server: it stops accepting, waits for
// in-flight requests to finish (bounded by ctx), then closes every
// connection and waits for the handlers to exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close() //nolint:errcheck
	}

	// Wait for in-flight requests (not idle connections) up to ctx.
	drained := make(chan struct{})
	go func() { s.reqWg.Wait(); close(drained) }()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Unblock idle (or overrunning) connection readers and collect the
	// handlers.
	s.mu.Lock()
	for c := range s.conns {
		c.Close() //nolint:errcheck
	}
	s.mu.Unlock()
	s.connWg.Wait()
	return err
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.connWg.Done()
	sess := session.New(s.db)
	defer sess.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close() //nolint:errcheck
	}()

	for {
		req, err := wire.ReadRequest(conn)
		if err != nil {
			return // client went away (or shutdown closed us)
		}
		// Register the request under the lock Shutdown uses to flip
		// draining: either the Add lands before the drain wait starts
		// (Shutdown waits for us), or we observe draining and drop the
		// request unexecuted. Never both, never neither.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return
		}
		s.reqWg.Add(1)
		s.mu.Unlock()
		s.sem <- struct{}{} // acquire a worker slot
		resp := s.dispatch(sess, req)
		<-s.sem
		// A response that cannot be encoded (unmarshalable values, frame
		// too large) becomes an error response; only real I/O failures
		// tear down the connection (and with it the session).
		frame, err := wire.Encode(resp)
		if err != nil {
			frame, err = wire.Encode(wire.ErrorResponse(fmt.Errorf("cannot encode response: %v", err)))
			if err != nil {
				s.reqWg.Done()
				return
			}
		}
		_, err = conn.Write(frame)
		s.reqWg.Done()
		if err != nil {
			return
		}
	}
}

// dispatch executes one request against the connection's session.
func (s *Server) dispatch(sess *session.Session, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{OK: true}
	case wire.OpQuery:
		res, err := sess.Query(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return resultResponse(res)
	case wire.OpExec:
		out, err := sess.Run(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		if out.Result != nil {
			return resultResponse(out.Result)
		}
		return &wire.Response{OK: true, Affected: out.Affected}
	case wire.OpPrepare:
		if err := sess.Prepare(req.Name, req.SQL); err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true}
	case wire.OpExecute:
		res, err := sess.Execute(req.Name)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return resultResponse(res)
	case wire.OpExplain:
		plan, err := sess.Explain(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true, Plan: plan}
	case wire.OpSet:
		if err := sess.SetOption(req.Name, req.SQL); err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true}
	default:
		return wire.ErrorResponse(fmt.Errorf("unknown op %q", req.Op))
	}
}

func resultResponse(res *perm.Result) *wire.Response {
	return &wire.Response{
		OK:      true,
		Columns: res.Columns,
		Prov:    res.ProvColumns,
		Rows:    res.RawRows(),
	}
}
