// Package server implements the permd query service: a TCP server
// speaking the length-prefixed wire protocol (package wire), with one
// session per connection, a worker pool bounding concurrently executing
// statements, and graceful shutdown.
//
// All connections share one *perm.Database — the same catalog, data and
// compiled-query cache — so a statement compiled for one client is a
// cache hit for every other client until DDL/DML moves the catalog
// version. Session state (options, prepared statements) stays private to
// each connection.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"perm"
	"perm/internal/fault"
	"perm/internal/obs"
	"perm/internal/qcache"
	"perm/internal/session"
	"perm/internal/wire"
)

// slowLog is the slow-query log configuration (immutable once set; the
// pointer swaps atomically so handlers never lock to check it).
type slowLog struct {
	threshold time.Duration
	mu        sync.Mutex // serializes writes to w
	w         io.Writer
}

// Server serves the Perm wire protocol over TCP.
type Server struct {
	db  *perm.Database
	sem chan struct{} // worker pool: bounds concurrently executing statements

	// admit bounds executing plus queued statements (admission control):
	// a request that cannot take a slot without blocking is shed with a
	// retryable "overloaded" error instead of queueing without limit.
	// maxConns bounds open client connections and idleTimeout puts
	// read/write deadlines on each connection. All three are configured
	// before Serve.
	admit       chan struct{}
	maxConns    int
	idleTimeout time.Duration

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	connWg sync.WaitGroup // running connection handlers
	reqWg  sync.WaitGroup // in-flight requests (for graceful drain)

	// Request-path metrics. Counted per request/connection — never
	// per-row — so the observation cost is one atomic add per event.
	connsTotal  obs.Counter
	connsActive obs.Gauge
	reqsTotal   obs.Counter
	errsTotal   obs.Counter
	slowTotal   obs.Counter
	drainGauge  obs.Gauge
	reqDur      *obs.Histogram

	slow atomic.Pointer[slowLog]
}

// New returns a server over db. workers bounds how many statements
// execute concurrently across all connections (<= 0: GOMAXPROCS).
func New(db *perm.Database, workers int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Server{
		db:  db,
		sem: make(chan struct{}, workers),
		// Default admission queue: twice the worker count may wait
		// beyond the statements executing (see SetQueueDepth).
		admit: make(chan struct{}, workers+2*workers),
		conns: make(map[net.Conn]struct{}),
		// Request latency buckets from 100µs to 10s (observed in
		// nanoseconds, exposed in seconds).
		reqDur: obs.NewHistogram(
			100_000, 1_000_000, 5_000_000, 10_000_000, 50_000_000,
			100_000_000, 500_000_000, 1_000_000_000, 5_000_000_000, 10_000_000_000),
	}
}

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return cap(s.sem) }

// SetQueueDepth bounds how many statements may wait for a worker slot
// beyond the ones executing (<= 0 restores the default of twice the
// worker count). Arrivals past the bound are shed immediately with a
// retryable "overloaded" error instead of queueing without limit. Must
// be called before Serve.
func (s *Server) SetQueueDepth(n int) {
	if n <= 0 {
		n = 2 * cap(s.sem)
	}
	s.admit = make(chan struct{}, cap(s.sem)+n)
}

// SetMaxConnections bounds concurrently open client connections (<= 0:
// unlimited). A connection over the limit has its first request answered
// with a retryable "overloaded" error before the connection closes. Must
// be called before Serve.
func (s *Server) SetMaxConnections(n int) { s.maxConns = n }

// SetIdleTimeout arms per-connection read/write deadlines: a connection
// idle for longer than d between requests — or one that cannot accept a
// response frame within d — is closed (0: no deadline). Must be called
// before Serve.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idleTimeout = d }

// Draining reports whether Shutdown has started (health endpoints use
// this to fail readiness before the listener closes).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// RegisterMetrics adds the server's metric families (connection and
// request counters, the request-latency histogram) to a registry —
// typically the one db.Metrics() returned, so one /metrics endpoint
// exposes engine and server state together.
func (s *Server) RegisterMetrics(r *obs.Registry) {
	r.CounterVar("perm_server_connections_total", "Client connections accepted.", "", &s.connsTotal)
	r.GaugeVar("perm_server_connections_active", "Client connections currently open.", "", &s.connsActive)
	r.CounterVar("perm_server_requests_total", "Requests dispatched.", "", &s.reqsTotal)
	r.CounterVar("perm_server_errors_total", "Requests answered with an error.", "", &s.errsTotal)
	r.CounterVar("perm_server_slow_queries_total", "Requests over the slow-query threshold.", "", &s.slowTotal)
	r.GaugeVar("perm_server_draining", "1 while the server is shutting down.", "", &s.drainGauge)
	r.HistogramVar("perm_query_duration_seconds", "Request execution latency.", s.reqDur, 1e-9)
}

// SetSlowQueryLog arms the slow-query log: every request that runs
// longer than threshold is recorded as one JSON line on w (the write is
// serialized; w need not be safe for concurrent use). A zero threshold
// logs every request; a nil w disarms the log.
func (s *Server) SetSlowQueryLog(threshold time.Duration, w io.Writer) {
	if w == nil {
		s.slow.Store(nil)
		return
	}
	s.slow.Store(&slowLog{threshold: threshold, w: w})
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close() //nolint:errcheck
		return errors.New("server is shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close() //nolint:errcheck
			continue
		}
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.conns[conn] = struct{}{}
			s.connWg.Add(1)
			s.mu.Unlock()
			obs.ConnsShed.Inc()
			obs.Events.Record(obs.EventAdmissionShed, "", "", "connection refused: connection limit reached")
			go s.refuse(conn, wire.CodeOverloaded, "connection limit reached: retry later")
			continue
		}
		s.conns[conn] = struct{}{}
		s.connWg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// refuseTimeout bounds how long a refused connection is held open
// waiting to deliver its error frame.
const refuseTimeout = 2 * time.Second

// refuse answers the connection's first request with a structured
// retryable error and closes it: a client over the connection limit
// sees a machine-readable refusal instead of a dropped socket. The
// connection is tracked like any other so Shutdown closes it too.
func (s *Server) refuse(conn net.Conn, code, msg string) {
	defer s.connWg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close() //nolint:errcheck
	}()
	conn.SetDeadline(time.Now().Add(refuseTimeout)) //nolint:errcheck
	if _, err := wire.ReadRequest(conn); err != nil {
		return
	}
	wire.WriteFrame(conn, wire.ErrorResponseCode(code, msg)) //nolint:errcheck
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown gracefully stops the server: it stops accepting, waits for
// in-flight requests to finish (bounded by ctx), then closes every
// connection and waits for the handlers to exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	s.drainGauge.Set(1)
	if ln != nil {
		ln.Close() //nolint:errcheck
	}

	// Wait for in-flight requests (not idle connections) up to ctx.
	drained := make(chan struct{})
	go func() { s.reqWg.Wait(); close(drained) }()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Unblock idle (or overrunning) connection readers and collect the
	// handlers.
	s.mu.Lock()
	for c := range s.conns {
		c.Close() //nolint:errcheck
	}
	s.mu.Unlock()
	s.connWg.Wait()
	return err
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.connWg.Done()
	s.connsTotal.Inc()
	s.connsActive.Inc()
	sess := session.New(s.db)
	defer sess.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close() //nolint:errcheck
		s.connsActive.Dec()
	}()

	for {
		if d := s.idleTimeout; d > 0 {
			conn.SetReadDeadline(time.Now().Add(d)) //nolint:errcheck
		}
		req, err := wire.ReadRequest(conn)
		if err != nil {
			return // client went away, idled out, or shutdown closed us
		}
		// Register the request under the lock Shutdown uses to flip
		// draining: either the Add lands before the drain wait starts
		// (Shutdown waits for us), or we observe draining and answer with
		// a structured retryable error, unexecuted. Never both, never
		// neither.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.writeResponse(conn, wire.ErrorResponseCode(wire.CodeDraining, "server draining: request not executed")) //nolint:errcheck
			return
		}
		s.reqWg.Add(1)
		s.mu.Unlock()
		// PING and CANCEL never wait behind worker slots: a saturated
		// server must still answer liveness checks, and cancellation of
		// the very queries occupying the slots must be able to land.
		outOfBand := req.Op == wire.OpPing || req.Op == wire.OpCancel
		if !outOfBand {
			// Admission control: take a queue slot without blocking or
			// shed the request. The admit channel caps executing plus
			// queued statements, so the wait for a worker slot below is
			// bounded and a surge degrades into fast retryable errors
			// instead of an unbounded queue.
			select {
			case s.admit <- struct{}{}:
			default:
				obs.ConnsShed.Inc()
				obs.Events.Record(obs.EventAdmissionShed, "", "", "request shed: admission queue full")
				s.errsTotal.Inc()
				err := s.writeResponse(conn, wire.ErrorResponseCode(wire.CodeOverloaded, "server overloaded: admission queue full, retry with backoff"))
				s.reqWg.Done()
				if err != nil {
					return
				}
				continue
			}
			s.sem <- struct{}{} // acquire a worker slot
		}
		slow := s.slow.Load()
		var pre queryPrecondition
		if slow != nil {
			pre = s.precondition(sess, req)
		}
		start := time.Now()
		resp := s.safeDispatch(sess, req)
		dur := time.Since(start)
		if !outOfBand {
			<-s.sem
			<-s.admit
		}
		s.reqsTotal.Inc()
		s.reqDur.Observe(dur.Nanoseconds())
		if resp.Err != "" {
			s.errsTotal.Inc()
		}
		if slow != nil && dur >= slow.threshold {
			s.slowTotal.Inc()
			s.logSlow(slow, sess, req, resp, dur, pre)
		}
		err = s.writeResponse(conn, resp)
		s.reqWg.Done()
		if err != nil {
			return
		}
	}
}

// writeResponse encodes resp and writes it as one frame under the
// connection's write deadline. A response that cannot be encoded
// (unmarshalable values, frame too large) becomes an error response;
// only real I/O failures — which tear down the connection — return an
// error. The conn.drop fault tap simulates a server dying mid-frame:
// half the frame, then the connection closes under the client.
func (s *Server) writeResponse(conn net.Conn, resp *wire.Response) error {
	frame, err := wire.Encode(resp)
	if err != nil {
		frame, err = wire.Encode(wire.ErrorResponse(fmt.Errorf("cannot encode response: %v", err)))
		if err != nil {
			return err
		}
	}
	if d := s.idleTimeout; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d)) //nolint:errcheck
	}
	if fault.Should(fault.PointConnDrop) {
		conn.Write(frame[:len(frame)/2]) //nolint:errcheck
		conn.Close()                     //nolint:errcheck
		return fmt.Errorf("fault: connection dropped mid-frame")
	}
	_, err = conn.Write(frame)
	return err
}

// safeDispatch runs dispatch under a panic barrier: a statement that
// panics inside the engine is converted into a structured "internal"
// wire error (with the stack on stderr for the operator) instead of
// crashing the process. The connection, its session, and every other
// query keep working.
func (s *Server) safeDispatch(sess *session.Session, req *wire.Request) (resp *wire.Response) {
	defer func() {
		if p := recover(); p != nil {
			obs.PanicsRecovered.Inc()
			obs.Events.Record(obs.EventPanicRecovered, "", "", fmt.Sprintf("panic in %s: %v", req.Op, p))
			fmt.Fprintf(os.Stderr, "permd: recovered panic in %s: %v\n%s", req.Op, p, debug.Stack())
			resp = wire.ErrorResponseCode(wire.CodeInternal, fmt.Sprintf("internal error: statement panicked: %v", p))
		}
	}()
	if err := fault.Failure(fault.PointDispatch); err != nil {
		panic(err)
	}
	return s.dispatch(sess, req)
}

// dispatch executes one request against the connection's session.
func (s *Server) dispatch(sess *session.Session, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{OK: true}
	case wire.OpCancel:
		// Cancellation targets the engine-wide active-query registry, so
		// any connection can cancel any session's query by ID.
		if err := s.db.Cancel(req.Name); err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true}
	case wire.OpQuery:
		res, err := sess.Query(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return resultResponse(res)
	case wire.OpExec:
		out, err := sess.Run(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		if out.Result != nil {
			return resultResponse(out.Result)
		}
		return &wire.Response{OK: true, Affected: out.Affected}
	case wire.OpPrepare:
		if err := sess.Prepare(req.Name, req.SQL); err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true}
	case wire.OpExecute:
		res, err := sess.Execute(req.Name)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return resultResponse(res)
	case wire.OpExplain:
		plan, err := sess.Explain(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true, Plan: plan}
	case wire.OpExplainAnalyze:
		plan, err := sess.ExplainAnalyze(req.SQL)
		if err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true, Plan: plan}
	case wire.OpSet:
		if err := sess.SetOption(req.Name, req.SQL); err != nil {
			return wire.ErrorResponse(err)
		}
		return &wire.Response{OK: true}
	default:
		return wire.ErrorResponse(fmt.Errorf("unknown op %q", req.Op))
	}
}

func resultResponse(res *perm.Result) *wire.Response {
	return &wire.Response{
		OK:      true,
		Columns: res.Columns,
		Prov:    res.ProvColumns,
		Rows:    res.RawRows(),
	}
}

// queryPrecondition is state captured before a request executes, so the
// slow-query log can report per-statement deltas. Only taken when the
// slow-query log is armed.
type queryPrecondition struct {
	cacheHit bool
	stats    perm.QueryStats // session budget counters before execution
}

func (s *Server) precondition(sess *session.Session, req *wire.Request) queryPrecondition {
	db := sess.DB()
	return queryPrecondition{
		cacheHit: req.SQL != "" && db.QueryCached(req.SQL),
		stats:    db.SessionQueryStats(),
	}
}

// slowEntry is one slow-query log line.
type slowEntry struct {
	Time         string  `json:"ts"`
	Op           string  `json:"op"`
	QueryID      string  `json:"query_id,omitempty"` // engine query ID (join key for perm_traces)
	Fingerprint  string  `json:"fingerprint,omitempty"`
	DurationMS   float64 `json:"duration_ms"`
	Rows         int     `json:"rows"`
	CacheHit     bool    `json:"cache_hit"`
	SpilledBytes int64   `json:"spilled_bytes"`
	SpillEvents  uint64  `json:"spill_events"`
	Parallelism  int     `json:"parallelism"`
	Spans        string  `json:"spans,omitempty"` // phase breakdown, when the query was trace-sampled
	Err          string  `json:"err,omitempty"`
}

// logSlow emits one JSON line for a request that crossed the slow-query
// threshold. Spill counters are the session budget's delta across the
// statement, so concurrent sessions don't bleed into each other.
func (s *Server) logSlow(sl *slowLog, sess *session.Session, req *wire.Request, resp *wire.Response, dur time.Duration, pre queryPrecondition) {
	db := sess.DB()
	post := db.SessionQueryStats()
	e := slowEntry{
		Time:         time.Now().UTC().Format(time.RFC3339Nano),
		Op:           req.Op,
		DurationMS:   float64(dur.Microseconds()) / 1000,
		Rows:         len(resp.Rows),
		CacheHit:     pre.cacheHit,
		SpilledBytes: post.BytesSpilled - pre.stats.BytesSpilled,
		SpillEvents:  post.SpillEvents - pre.stats.SpillEvents,
		Parallelism:  db.Opts().Parallelism,
		Err:          resp.Err,
	}
	if req.SQL != "" {
		e.Fingerprint = qcache.Fingerprint(req.SQL)
	}
	if info := db.LastQueryInfo(); info.ID != "" {
		e.QueryID = info.ID
		e.Spans = info.Spans
	}
	if resp.Rows == nil {
		e.Rows = resp.Affected
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.w.Write(append(line, '\n')) //nolint:errcheck — logging is best-effort
}
