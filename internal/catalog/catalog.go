// Package catalog maintains the schema objects of a Perm database: base
// tables (with their in-memory storage) and views (stored as parsed query
// text, unfolded by the analyzer exactly like PostgreSQL's rewriter stage
// in Fig. 5 of the paper).
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"perm/internal/sql"
	"perm/internal/storage"
	"perm/internal/types"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type types.Kind
}

// Table is a base relation: schema plus heap storage, plus a lazily
// maintained statistics snapshot (see Stats in stats.go).
type Table struct {
	Name string
	Cols []Column
	Heap *storage.Heap

	stats atomic.Pointer[tableStatsCache]
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// View is a named stored query, unfolded at analysis time.
type View struct {
	Name  string
	Query *sql.SelectStmt
	Text  string // original definition text, for introspection
}

// Catalog is the collection of schema objects. It is safe for concurrent
// readers; DDL takes the write lock.
//
// The catalog carries a monotonic version counter: every DDL statement
// bumps it internally, and the engine bumps it (via Bump) after DML.
// Compiled-query caches and prepared statements tag their artifacts with
// the version they were compiled under and recompile when it has moved,
// so no cached plan can outlive the schema (or, conservatively, the
// data) it was compiled against.
type Catalog struct {
	version atomic.Uint64
	mu      sync.RWMutex
	tables  map[string]*Table
	views   map[string]*View
	virtual map[string]*VirtualTable
}

// Version returns the current catalog version. It is safe to call
// concurrently with DDL; a reader that compiles against version v and
// later observes Version() != v must discard the compiled artifact.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// Bump advances the catalog version. DDL methods bump internally; the
// engine calls Bump after DML so data changes also invalidate
// version-tagged artifacts (conservative, but keeps cached plans from
// ever observing a world they were not compiled in).
func (c *Catalog) Bump() { c.version.Add(1) }

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
	}
}

// CreateTable adds a base table. It fails if a table or view of the same
// name exists, unless ifNotExists is set and the object is a table.
func (c *Catalog) CreateTable(name string, cols []Column, ifNotExists bool) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		if ifNotExists {
			return c.tables[name], nil
		}
		return nil, fmt.Errorf("table %q already exists", name)
	}
	if _, ok := c.views[name]; ok {
		return nil, fmt.Errorf("view %q already exists", name)
	}
	if _, ok := c.virtual[name]; ok {
		return nil, fmt.Errorf("%q is a system table", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("table %q must have at least one column", name)
	}
	seen := make(map[string]bool, len(cols))
	for _, col := range cols {
		if seen[col.Name] {
			return nil, fmt.Errorf("duplicate column %q in table %q", col.Name, name)
		}
		seen[col.Name] = true
	}
	t := &Table{Name: name, Cols: cols, Heap: storage.NewHeap(len(cols))}
	c.tables[name] = t
	c.version.Add(1)
	return t, nil
}

// CreateView adds a view definition.
func (c *Catalog) CreateView(name string, q *sql.SelectStmt, text string, orReplace bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return fmt.Errorf("table %q already exists", name)
	}
	if _, ok := c.views[name]; ok && !orReplace {
		return fmt.Errorf("view %q already exists", name)
	}
	if _, ok := c.virtual[name]; ok {
		return fmt.Errorf("%q is a system table", name)
	}
	c.views[name] = &View{Name: name, Query: q, Text: text}
	c.version.Add(1)
	return nil
}

// Drop removes a table or view.
func (c *Catalog) Drop(name string, view, ifExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if view {
		if _, ok := c.views[name]; !ok {
			if ifExists {
				return nil
			}
			return fmt.Errorf("view %q does not exist", name)
		}
		delete(c.views, name)
		c.version.Add(1)
		return nil
	}
	if _, ok := c.tables[name]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("table %q does not exist", name)
	}
	delete(c.tables, name)
	c.version.Add(1)
	return nil
}

// Table looks up a base table.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// View looks up a view.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[name]
	return v, ok
}

// TableNames returns the sorted names of all base tables.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ViewNames returns the sorted names of all views.
func (c *Catalog) ViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.views))
	for n := range c.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
