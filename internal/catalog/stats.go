// Table statistics: per-table row counts and per-column NDV/min-max/null
// sketches the planner's cost model feeds on. Statistics are recomputed
// lazily — the first Stats call after a mutation rebuilds them from a
// heap snapshot and caches the result behind the heap's version counter,
// so DML costs nothing until the next planning decision needs fresh
// numbers, and repeated planning over an unchanged table costs two atomic
// loads.
package catalog

import (
	"perm/internal/types"
)

// statsSampleCap bounds the rows hashed for the NDV estimate. Min/max and
// null fractions always scan the full column (one cheap pass); distinct
// counting is the expensive part, so it samples a prefix and extrapolates.
const statsSampleCap = 8192

// ColStats summarizes one column for selectivity and join-cardinality
// estimation.
type ColStats struct {
	Kind types.Kind
	// NDV is the estimated number of distinct non-NULL values.
	NDV float64
	// NullFrac is the fraction of NULL values.
	NullFrac float64
	// HasRange reports whether MinF/MaxF (numeric and date columns, dates
	// as epoch days) or MinS/MaxS (string columns) are populated.
	HasRange   bool
	MinF, MaxF float64
	MinS, MaxS string
}

// TableStats is the statistics snapshot of one base table.
type TableStats struct {
	// Rows is the table cardinality at the snapshot version.
	Rows float64
	// Cols holds per-column sketches, in schema order.
	Cols []ColStats
}

// tableStatsCache pairs a stats snapshot with the heap version it was
// computed from.
type tableStatsCache struct {
	version uint64
	stats   *TableStats
}

// Stats returns the table's statistics, recomputing them at most once per
// heap version. The returned snapshot is shared and read-only.
func (t *Table) Stats() *TableStats {
	v := t.Heap.Version()
	if c := t.stats.Load(); c != nil && c.version == v {
		return c.stats
	}
	// The version is read before the snapshot, so the rows are at least as
	// new as the claimed version; a concurrent mutation makes the cache
	// entry conservatively stale and the next call recomputes.
	rows := t.Heap.Snapshot()
	s := computeStats(rows, t.Cols)
	t.stats.Store(&tableStatsCache{version: v, stats: s})
	return s
}

// valKey is a comparable boxing of a value for distinct counting.
type valKey struct {
	k types.Kind
	i int64
	f float64
	b bool
	s string
}

func keyOf(v types.Value) valKey {
	key := valKey{k: v.K}
	switch v.K {
	case types.KindBool:
		key.b = v.B
	case types.KindInt, types.KindDate:
		key.i = v.I
	case types.KindFloat:
		key.f = v.F
	case types.KindString:
		key.s = v.S
	}
	// Cross-kind numeric equality (1 = 1.0) folds into one key.
	if v.K == types.KindInt {
		key.k = types.KindFloat
		key.f = float64(v.I)
	}
	return key
}

func computeStats(rows []types.Row, cols []Column) *TableStats {
	n := len(rows)
	s := &TableStats{Rows: float64(n), Cols: make([]ColStats, len(cols))}
	// Distinct counting samples a stride over the whole table rather than
	// a prefix: insertion-ordered columns (dates appended chronologically,
	// clustered keys) would make a prefix sample wildly unrepresentative.
	stride := 1
	sample := n
	if n > statsSampleCap {
		stride = (n + statsSampleCap - 1) / statsSampleCap
		sample = (n + stride - 1) / stride
	}
	for c := range cols {
		cs := &s.Cols[c]
		cs.Kind = cols[c].Type
		nulls := 0
		distinct := make(map[valKey]struct{}, sample)
		first := true
		var minF, maxF float64
		var minS, maxS string
		ranged := false
		for i, r := range rows {
			if c >= len(r) {
				continue
			}
			v := r[c]
			if v.Null {
				nulls++
				continue
			}
			if i%stride == 0 {
				distinct[keyOf(v)] = struct{}{}
			}
			switch v.K {
			case types.KindInt, types.KindFloat, types.KindDate:
				f := v.AsFloat()
				if first || f < minF {
					minF = f
				}
				if first || f > maxF {
					maxF = f
				}
				first, ranged = false, true
			case types.KindString:
				if first || v.S < minS {
					minS = v.S
				}
				if first || v.S > maxS {
					maxS = v.S
				}
				first, ranged = false, true
			}
		}
		if n > 0 {
			cs.NullFrac = float64(nulls) / float64(n)
		}
		d := float64(len(distinct))
		nonNull := float64(n - nulls)
		if sample < n && d > float64(sample)/2 {
			// The sample kept finding new values: extrapolate linearly.
			d = d * float64(n) / float64(sample)
		}
		if d > nonNull {
			d = nonNull
		}
		cs.NDV = d
		if ranged {
			cs.HasRange = true
			cs.MinF, cs.MaxF = minF, maxF
			cs.MinS, cs.MaxS = minS, maxS
		}
	}
	return s
}
