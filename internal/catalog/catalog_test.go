package catalog

import (
	"sync"
	"testing"

	"perm/internal/sql"
	"perm/internal/types"
)

func intCol(name string) Column { return Column{Name: name, Type: types.KindInt} }

func TestCreateAndLookup(t *testing.T) {
	c := New()
	tab, err := c.CreateTable("t", []Column{intCol("a"), intCol("b")}, false)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ColIndex("b") != 1 || tab.ColIndex("zzz") != -1 {
		t.Error("ColIndex wrong")
	}
	got, ok := c.Table("t")
	if !ok || got != tab {
		t.Error("lookup failed")
	}
	if _, ok := c.Table("nope"); ok {
		t.Error("phantom table")
	}
}

func TestCreateTableErrors(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", nil, false); err == nil {
		t.Error("empty column list must fail")
	}
	if _, err := c.CreateTable("t", []Column{intCol("a"), intCol("a")}, false); err == nil {
		t.Error("duplicate column must fail")
	}
	if _, err := c.CreateTable("t", []Column{intCol("a")}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", []Column{intCol("a")}, false); err == nil {
		t.Error("duplicate table must fail")
	}
	// IF NOT EXISTS returns the existing table.
	tab, err := c.CreateTable("t", []Column{intCol("x")}, true)
	if err != nil || tab.ColIndex("a") != 0 {
		t.Errorf("IF NOT EXISTS = %v, %v", tab, err)
	}
}

func TestViews(t *testing.T) {
	c := New()
	stmt, err := sql.Parse("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*sql.SelectStmt)
	if err := c.CreateView("v", sel, "SELECT 1", false); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView("v", sel, "", false); err == nil {
		t.Error("duplicate view must fail")
	}
	if err := c.CreateView("v", sel, "", true); err != nil {
		t.Errorf("OR REPLACE failed: %v", err)
	}
	if _, err := c.CreateTable("v", []Column{intCol("a")}, false); err == nil {
		t.Error("table/view name collision must fail")
	}
	if err := c.Drop("v", true, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("v", true, false); err == nil {
		t.Error("dropping missing view must fail")
	}
	if err := c.Drop("v", true, true); err != nil {
		t.Error("IF EXISTS must not fail")
	}
}

func TestNameListings(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.CreateTable(n, []Column{intCol("a")}, false); err != nil {
			t.Fatal(err)
		}
	}
	names := c.TableNames()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("TableNames = %v (must be sorted)", names)
	}
}

func TestConcurrentReaders(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", []Column{intCol("a")}, false); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if _, ok := c.Table("t"); !ok {
					t.Error("table vanished")
					return
				}
				c.TableNames()
			}
		}()
	}
	wg.Wait()
}
