package catalog

import (
	"fmt"
	"sync"
	"testing"

	"perm/internal/sql"
	"perm/internal/types"
)

func intCol(name string) Column { return Column{Name: name, Type: types.KindInt} }

func TestCreateAndLookup(t *testing.T) {
	c := New()
	tab, err := c.CreateTable("t", []Column{intCol("a"), intCol("b")}, false)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ColIndex("b") != 1 || tab.ColIndex("zzz") != -1 {
		t.Error("ColIndex wrong")
	}
	got, ok := c.Table("t")
	if !ok || got != tab {
		t.Error("lookup failed")
	}
	if _, ok := c.Table("nope"); ok {
		t.Error("phantom table")
	}
}

func TestCreateTableErrors(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", nil, false); err == nil {
		t.Error("empty column list must fail")
	}
	if _, err := c.CreateTable("t", []Column{intCol("a"), intCol("a")}, false); err == nil {
		t.Error("duplicate column must fail")
	}
	if _, err := c.CreateTable("t", []Column{intCol("a")}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", []Column{intCol("a")}, false); err == nil {
		t.Error("duplicate table must fail")
	}
	// IF NOT EXISTS returns the existing table.
	tab, err := c.CreateTable("t", []Column{intCol("x")}, true)
	if err != nil || tab.ColIndex("a") != 0 {
		t.Errorf("IF NOT EXISTS = %v, %v", tab, err)
	}
}

func TestViews(t *testing.T) {
	c := New()
	stmt, err := sql.Parse("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*sql.SelectStmt)
	if err := c.CreateView("v", sel, "SELECT 1", false); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView("v", sel, "", false); err == nil {
		t.Error("duplicate view must fail")
	}
	if err := c.CreateView("v", sel, "", true); err != nil {
		t.Errorf("OR REPLACE failed: %v", err)
	}
	if _, err := c.CreateTable("v", []Column{intCol("a")}, false); err == nil {
		t.Error("table/view name collision must fail")
	}
	if err := c.Drop("v", true, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("v", true, false); err == nil {
		t.Error("dropping missing view must fail")
	}
	if err := c.Drop("v", true, true); err != nil {
		t.Error("IF EXISTS must not fail")
	}
}

func TestNameListings(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.CreateTable(n, []Column{intCol("a")}, false); err != nil {
			t.Fatal(err)
		}
	}
	names := c.TableNames()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("TableNames = %v (must be sorted)", names)
	}
}

func TestConcurrentReaders(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", []Column{intCol("a")}, false); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if _, ok := c.Table("t"); !ok {
					t.Error("table vanished")
					return
				}
				c.TableNames()
			}
		}()
	}
	wg.Wait()
}

// TestVersionBumpsOnDDL: every successful DDL statement must advance the
// monotonic catalog version, and failed DDL must not.
func TestVersionBumpsOnDDL(t *testing.T) {
	c := New()
	v0 := c.Version()
	if _, err := c.CreateTable("t", []Column{intCol("a")}, false); err != nil {
		t.Fatal(err)
	}
	v1 := c.Version()
	if v1 <= v0 {
		t.Fatalf("CREATE TABLE did not bump version: %d -> %d", v0, v1)
	}
	// Failed DDL (duplicate) leaves the version alone.
	if _, err := c.CreateTable("t", []Column{intCol("a")}, false); err == nil {
		t.Fatal("duplicate CREATE TABLE must fail")
	}
	if c.Version() != v1 {
		t.Fatalf("failed DDL bumped version")
	}
	// IF NOT EXISTS no-op leaves the version alone.
	if _, err := c.CreateTable("t", []Column{intCol("a")}, true); err != nil {
		t.Fatal(err)
	}
	if c.Version() != v1 {
		t.Fatalf("no-op CREATE TABLE IF NOT EXISTS bumped version")
	}
	if err := c.Drop("t", false, false); err != nil {
		t.Fatal(err)
	}
	if c.Version() <= v1 {
		t.Fatalf("DROP did not bump version")
	}
	v2 := c.Version()
	c.Bump()
	if c.Version() != v2+1 {
		t.Fatalf("Bump did not advance version")
	}
}

// TestVersionConcurrentDDL: concurrent DDL plus version/name readers must
// be race-free, and the version must end up counting every successful DDL.
func TestVersionConcurrentDDL(t *testing.T) {
	c := New()
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := fmt.Sprintf("t_%d_%d", g, i)
				if _, err := c.CreateTable(name, []Column{intCol("a")}, false); err != nil {
					t.Errorf("create %s: %v", name, err)
				}
				c.Version()
				c.TableNames()
			}
		}(g)
	}
	wg.Wait()
	if got, want := c.Version(), uint64(4*perG); got != want {
		t.Fatalf("version = %d, want %d", got, want)
	}
}
