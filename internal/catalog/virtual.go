// Virtual system tables: relations whose rows are produced by a
// callback at scan time instead of being stored in a heap. The engine
// registers its introspection views here (perm_stat_activity,
// perm_stat_statements, perm_traces, perm_metrics); the analyzer and
// planner resolve them like any other relation, so they compose with
// the entire SQL surface — joins, aggregates, even provenance rewrites.
package catalog

import (
	"fmt"
	"sort"

	"perm/internal/types"
)

// VirtualTable is a read-only relation backed by a row generator. Rows
// is called at execution time (every scan sees a fresh snapshot) and
// must return rows matching Cols in width and type.
type VirtualTable struct {
	Name string
	Cols []Column
	Rows func() []types.Row
}

// ColIndex returns the position of the named column, or -1.
func (v *VirtualTable) ColIndex(name string) int {
	for i, c := range v.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// RegisterVirtual adds a virtual table. Virtual names share the relation
// namespace: registration fails if a table or view of the same name
// exists, and CreateTable/CreateView refuse names taken by a virtual
// table. Virtual tables are engine-defined and never dropped, so
// registration happens once at database construction.
func (c *Catalog) RegisterVirtual(v *VirtualTable) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.virtual == nil {
		c.virtual = make(map[string]*VirtualTable)
	}
	if _, ok := c.tables[v.Name]; ok {
		return fmt.Errorf("table %q already exists", v.Name)
	}
	if _, ok := c.views[v.Name]; ok {
		return fmt.Errorf("view %q already exists", v.Name)
	}
	if _, ok := c.virtual[v.Name]; ok {
		return fmt.Errorf("virtual table %q already exists", v.Name)
	}
	c.virtual[v.Name] = v
	c.version.Add(1)
	return nil
}

// Virtual looks up a virtual table.
func (c *Catalog) Virtual(name string) (*VirtualTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.virtual[name]
	return v, ok
}

// VirtualNames returns the sorted names of all virtual tables.
func (c *Catalog) VirtualNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.virtual))
	for n := range c.virtual {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
