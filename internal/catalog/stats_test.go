package catalog

import (
	"testing"

	"perm/internal/types"
)

func TestTableStatsLazyAndVersioned(t *testing.T) {
	c := New()
	tab, err := c.CreateTable("t", []Column{intCol("a"), intCol("b")}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 10))}
		if i%5 == 0 {
			row[1] = types.NewNull(types.KindInt)
		}
		if err := tab.Heap.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	st := tab.Stats()
	if st.Rows != 100 {
		t.Fatalf("rows = %v, want 100", st.Rows)
	}
	if st.Cols[0].NDV != 100 {
		t.Fatalf("col a NDV = %v, want 100 (exact under the sample cap)", st.Cols[0].NDV)
	}
	if !st.Cols[0].HasRange || st.Cols[0].MinF != 0 || st.Cols[0].MaxF != 99 {
		t.Fatalf("col a range = [%v, %v] hasRange=%v", st.Cols[0].MinF, st.Cols[0].MaxF, st.Cols[0].HasRange)
	}
	if got := st.Cols[1].NullFrac; got != 0.2 {
		t.Fatalf("col b null fraction = %v, want 0.2", got)
	}
	// Unchanged heap: the same snapshot comes back (cached).
	if tab.Stats() != st {
		t.Fatal("stats recomputed without a mutation")
	}
	// A mutation invalidates lazily: the next call sees the new state.
	if err := tab.Heap.Insert(types.Row{types.NewInt(1000), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	st2 := tab.Stats()
	if st2 == st || st2.Rows != 101 || st2.Cols[0].MaxF != 1000 {
		t.Fatalf("stats not refreshed after insert: rows=%v max=%v", st2.Rows, st2.Cols[0].MaxF)
	}
}

func TestColStatsNDVExtrapolation(t *testing.T) {
	c := New()
	tab, err := c.CreateTable("big", []Column{intCol("k")}, false)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3 * statsSampleCap
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i))} // all distinct
	}
	if err := tab.Heap.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	st := tab.Stats()
	// The sample saw statsSampleCap distinct values out of statsSampleCap
	// sampled; the estimate must extrapolate towards n, not stay at the
	// sample size.
	if st.Cols[0].NDV < float64(n)/2 {
		t.Fatalf("NDV = %v, want near %d", st.Cols[0].NDV, n)
	}
}
