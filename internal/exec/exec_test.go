package exec

import (
	"fmt"
	"testing"

	"perm/internal/eval"
	"perm/internal/types"
)

func rows(vals ...[]int64) []types.Row {
	out := make([]types.Row, len(vals))
	for i, r := range vals {
		row := make(types.Row, len(r))
		for j, v := range r {
			row[j] = types.NewInt(v)
		}
		out[i] = row
	}
	return out
}

func colFn(pos int) eval.Func {
	return func(ctx *eval.Ctx) (types.Value, error) { return ctx.Row[pos], nil }
}

func constBool(b bool) eval.Func {
	return func(*eval.Ctx) (types.Value, error) { return types.NewBool(b), nil }
}

func collectInts(t *testing.T, n Node) [][]int64 {
	t.Helper()
	out, err := Collect(n)
	if err != nil {
		t.Fatal(err)
	}
	res := make([][]int64, len(out))
	for i, r := range out {
		ints := make([]int64, len(r))
		for j, v := range r {
			if v.Null {
				ints[j] = -999
			} else {
				ints[j] = v.I
			}
		}
		res[i] = ints
	}
	return res
}

func wantRows(t *testing.T, got [][]int64, want [][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d %v", len(got), got, len(want), want)
	}
	used := make([]bool, len(want))
outer:
	for _, g := range got {
		for i, w := range want {
			if used[i] || len(g) != len(w) {
				continue
			}
			same := true
			for j := range g {
				if g[j] != w[j] {
					same = false
					break
				}
			}
			if same {
				used[i] = true
				continue outer
			}
		}
		t.Fatalf("unexpected row %v\ngot: %v\nwant: %v", g, got, want)
	}
}

func TestScanAndFilter(t *testing.T) {
	scan := NewScan(rows([]int64{1}, []int64{2}, []int64{3}))
	pred := func(ctx *eval.Ctx) (types.Value, error) {
		return types.NewBool(ctx.Row[0].I >= 2), nil
	}
	got := collectInts(t, NewFilter(scan, pred))
	wantRows(t, got, [][]int64{{2}, {3}})
}

func TestScanReopen(t *testing.T) {
	scan := NewScan(rows([]int64{1}))
	for i := 0; i < 2; i++ {
		got, err := Collect(scan)
		if err != nil || len(got) != 1 {
			t.Fatalf("pass %d: %v %v", i, got, err)
		}
	}
}

func TestProject(t *testing.T) {
	scan := NewScan(rows([]int64{1, 10}))
	double := func(ctx *eval.Ctx) (types.Value, error) {
		return types.NewInt(ctx.Row[1].I * 2), nil
	}
	got := collectInts(t, NewProject(scan, []eval.Func{double, colFn(0)}))
	wantRows(t, got, [][]int64{{20, 1}})
}

func TestNestedLoopJoinTypes(t *testing.T) {
	left := rows([]int64{1}, []int64{2}, []int64{3})
	right := rows([]int64{2, 20}, []int64{2, 21}, []int64{4, 40})
	cond := func(ctx *eval.Ctx) (types.Value, error) {
		if ctx.Row[0].Null || ctx.Row[1].Null {
			return types.NewNull(types.KindBool), nil
		}
		return types.NewBool(ctx.Row[0].I == ctx.Row[1].I), nil
	}
	intKinds := func(n int) []types.Kind {
		ks := make([]types.Kind, n)
		for i := range ks {
			ks[i] = types.KindInt
		}
		return ks
	}

	t.Run("inner", func(t *testing.T) {
		j := NewNestedLoopJoin(NewScan(left), NewScan(right), cond, InnerJoin, intKinds(1), intKinds(2))
		wantRows(t, collectInts(t, j), [][]int64{{2, 2, 20}, {2, 2, 21}})
	})
	t.Run("left", func(t *testing.T) {
		j := NewNestedLoopJoin(NewScan(left), NewScan(right), cond, LeftJoin, intKinds(1), intKinds(2))
		wantRows(t, collectInts(t, j), [][]int64{
			{1, -999, -999}, {2, 2, 20}, {2, 2, 21}, {3, -999, -999}})
	})
	t.Run("right", func(t *testing.T) {
		j := NewNestedLoopJoin(NewScan(left), NewScan(right), cond, RightJoin, intKinds(1), intKinds(2))
		wantRows(t, collectInts(t, j), [][]int64{
			{2, 2, 20}, {2, 2, 21}, {-999, 4, 40}})
	})
	t.Run("full", func(t *testing.T) {
		j := NewNestedLoopJoin(NewScan(left), NewScan(right), cond, FullJoin, intKinds(1), intKinds(2))
		wantRows(t, collectInts(t, j), [][]int64{
			{1, -999, -999}, {2, 2, 20}, {2, 2, 21}, {3, -999, -999}, {-999, 4, 40}})
	})
	t.Run("cross", func(t *testing.T) {
		j := NewNestedLoopJoin(NewScan(left), NewScan(right), nil, InnerJoin, intKinds(1), intKinds(2))
		if got := collectInts(t, j); len(got) != 9 {
			t.Fatalf("cross join rows = %d, want 9", len(got))
		}
	})
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	left := rows([]int64{1}, []int64{2}, []int64{2}, []int64{5})
	right := rows([]int64{2, 20}, []int64{5, 50}, []int64{7, 70})
	intKinds := []types.Kind{types.KindInt}
	rightKinds := []types.Kind{types.KindInt, types.KindInt}
	for _, jt := range []JoinType{InnerJoin, LeftJoin, RightJoin, FullJoin} {
		jt := jt
		t.Run(fmt.Sprintf("type%d", jt), func(t *testing.T) {
			hj := NewHashJoin(NewScan(left), NewScan(right),
				[]eval.Func{colFn(0)}, []eval.Func{colFn(0)}, []bool{false},
				nil, jt, intKinds, rightKinds)
			cond := func(ctx *eval.Ctx) (types.Value, error) {
				if ctx.Row[0].Null || ctx.Row[1].Null {
					return types.NewNull(types.KindBool), nil
				}
				return types.NewBool(ctx.Row[0].I == ctx.Row[1].I), nil
			}
			nl := NewNestedLoopJoin(NewScan(left), NewScan(right), cond, jt, intKinds, rightKinds)
			wantRows(t, collectInts(t, hj), collectInts(t, nl))
		})
	}
}

func TestHashJoinNullSafety(t *testing.T) {
	null := types.Row{types.NewNull(types.KindInt)}
	left := []types.Row{null, {types.NewInt(1)}}
	right := []types.Row{null.Clone(), {types.NewInt(1)}}
	intKinds := []types.Kind{types.KindInt}

	// Plain equality: NULL keys never match.
	hj := NewHashJoin(NewScan(left), NewScan(right),
		[]eval.Func{colFn(0)}, []eval.Func{colFn(0)}, []bool{false},
		nil, InnerJoin, intKinds, intKinds)
	got, err := Collect(hj)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("plain equality matched %d rows, want 1", len(got))
	}

	// Null-safe: NULL keys match each other (the rewriter's join-back).
	hj = NewHashJoin(NewScan(left), NewScan(right),
		[]eval.Func{colFn(0)}, []eval.Func{colFn(0)}, []bool{true},
		nil, InnerJoin, intKinds, intKinds)
	got, err = Collect(hj)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("null-safe equality matched %d rows, want 2", len(got))
	}
}

func TestHashJoinResidual(t *testing.T) {
	left := rows([]int64{2, 1}, []int64{2, 9})
	right := rows([]int64{2, 5})
	// join on col0 = col0 with residual left.col1 < right.col1.
	residual := func(ctx *eval.Ctx) (types.Value, error) {
		return types.NewBool(ctx.Row[1].I < ctx.Row[3].I), nil
	}
	hj := NewHashJoin(NewScan(left), NewScan(right),
		[]eval.Func{colFn(0)}, []eval.Func{colFn(0)}, []bool{false},
		residual, LeftJoin,
		[]types.Kind{types.KindInt, types.KindInt},
		[]types.Kind{types.KindInt, types.KindInt})
	got := collectInts(t, hj)
	wantRows(t, got, [][]int64{{2, 1, 2, 5}, {2, 9, -999, -999}})
}

func TestHashAggGlobal(t *testing.T) {
	input := rows([]int64{1}, []int64{2}, []int64{3})
	agg := NewHashAgg(NewScan(input), nil, []AggSpec{
		{Kind: AggCountStar, ResultKind: types.KindInt},
		{Kind: AggSum, Arg: colFn(0), ResultKind: types.KindInt},
		{Kind: AggAvg, Arg: colFn(0), ResultKind: types.KindFloat},
		{Kind: AggMin, Arg: colFn(0), ResultKind: types.KindInt},
		{Kind: AggMax, Arg: colFn(0), ResultKind: types.KindInt},
	})
	out, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	r := out[0]
	if r[0].I != 3 || r[1].I != 6 || r[2].F != 2.0 || r[3].I != 1 || r[4].I != 3 {
		t.Errorf("agg row = %v", r)
	}
}

func TestHashAggEmptyInput(t *testing.T) {
	agg := NewHashAgg(NewScan(nil), nil, []AggSpec{
		{Kind: AggCountStar, ResultKind: types.KindInt},
		{Kind: AggSum, Arg: colFn(0), ResultKind: types.KindInt},
	})
	out, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0].I != 0 || !out[0][1].Null {
		t.Fatalf("global agg over empty input = %v", out)
	}
	// Grouped aggregation over empty input: no rows.
	agg = NewHashAgg(NewScan(nil), []eval.Func{colFn(0)}, []AggSpec{
		{Kind: AggCountStar, ResultKind: types.KindInt},
	})
	out, err = Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("grouped agg over empty input = %v", out)
	}
}

func TestHashAggGroupsAndDistinct(t *testing.T) {
	input := rows([]int64{1, 10}, []int64{1, 10}, []int64{1, 20}, []int64{2, 30})
	agg := NewHashAgg(NewScan(input), []eval.Func{colFn(0)}, []AggSpec{
		{Kind: AggCount, Arg: colFn(1), ResultKind: types.KindInt},
		{Kind: AggCount, Arg: colFn(1), Distinct: true, ResultKind: types.KindInt},
		{Kind: AggSum, Arg: colFn(1), Distinct: true, ResultKind: types.KindInt},
	})
	got := collectInts(t, agg)
	wantRows(t, got, [][]int64{{1, 3, 2, 30}, {2, 1, 1, 30}})
}

func TestHashAggNullGroups(t *testing.T) {
	input := []types.Row{
		{types.NewNull(types.KindInt)},
		{types.NewNull(types.KindInt)},
		{types.NewInt(1)},
	}
	agg := NewHashAgg(NewScan(input), []eval.Func{colFn(0)}, []AggSpec{
		{Kind: AggCountStar, ResultKind: types.KindInt},
	})
	got := collectInts(t, agg)
	wantRows(t, got, [][]int64{{-999, 2}, {1, 1}})
}

func TestSortNullsOrdering(t *testing.T) {
	input := []types.Row{
		{types.NewInt(2)}, {types.NewNull(types.KindInt)}, {types.NewInt(1)},
	}
	s := NewSort(NewScan(input), []SortKey{{Pos: 0}})
	got := collectInts(t, s)
	// NULLS LAST ascending.
	if got[0][0] != 1 || got[1][0] != 2 || got[2][0] != -999 {
		t.Errorf("asc sort = %v", got)
	}
	s = NewSort(NewScan(input), []SortKey{{Pos: 0, Desc: true}})
	got = collectInts(t, s)
	// NULLS FIRST descending.
	if got[0][0] != -999 || got[1][0] != 2 || got[2][0] != 1 {
		t.Errorf("desc sort = %v", got)
	}
}

func TestSortStability(t *testing.T) {
	input := rows([]int64{1, 1}, []int64{1, 2}, []int64{1, 3})
	s := NewSort(NewScan(input), []SortKey{{Pos: 0}})
	got := collectInts(t, s)
	for i, r := range got {
		if r[1] != int64(i+1) {
			t.Fatalf("sort not stable: %v", got)
		}
	}
}

func TestLimitOffset(t *testing.T) {
	input := rows([]int64{1}, []int64{2}, []int64{3}, []int64{4})
	got := collectInts(t, NewLimit(NewScan(input), 2, 1))
	wantRows(t, got, [][]int64{{2}, {3}})
	got = collectInts(t, NewLimit(NewScan(input), 0, 0))
	if len(got) != 0 {
		t.Errorf("limit 0 = %v", got)
	}
	got = collectInts(t, NewLimit(NewScan(input), -1, 2))
	wantRows(t, got, [][]int64{{3}, {4}})
}

func TestDistinctNode(t *testing.T) {
	input := []types.Row{
		{types.NewInt(1)}, {types.NewInt(1)},
		{types.NewNull(types.KindInt)}, {types.NewNull(types.KindInt)},
	}
	got := collectInts(t, NewDistinct(NewScan(input)))
	wantRows(t, got, [][]int64{{1}, {-999}})
}

func TestSetOpSemantics(t *testing.T) {
	left := rows([]int64{1}, []int64{2}, []int64{2}, []int64{3})
	right := rows([]int64{2}, []int64{3}, []int64{3}, []int64{4})
	cases := []struct {
		kind SetOpKind
		all  bool
		want [][]int64
	}{
		{Union, false, [][]int64{{1}, {2}, {3}, {4}}},
		{Union, true, [][]int64{{1}, {2}, {2}, {3}, {2}, {3}, {3}, {4}}},
		{Intersect, false, [][]int64{{2}, {3}}},
		{Intersect, true, [][]int64{{2}, {3}}},
		{Except, false, [][]int64{{1}}},
		{Except, true, [][]int64{{1}, {2}}},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%d-all=%v", tc.kind, tc.all)
		t.Run(name, func(t *testing.T) {
			op := NewSetOp(NewScan(left), NewScan(right), tc.kind, tc.all)
			wantRows(t, collectInts(t, op), tc.want)
		})
	}
}

func TestSetOpNullRows(t *testing.T) {
	null := types.Row{types.NewNull(types.KindInt)}
	left := []types.Row{null, null.Clone(), {types.NewInt(1)}}
	right := []types.Row{null.Clone()}
	// Set ops treat NULLs as equal (null-safe), per SQL set semantics.
	op := NewSetOp(NewScan(left), NewScan(right), Except, true)
	got := collectInts(t, op)
	wantRows(t, got, [][]int64{{-999}, {1}})
}

func TestFilterErrorPropagation(t *testing.T) {
	scan := NewScan(rows([]int64{1}))
	bad := func(*eval.Ctx) (types.Value, error) {
		return types.NullValue, fmt.Errorf("boom")
	}
	if _, err := Collect(NewFilter(scan, bad)); err == nil {
		t.Error("filter must propagate evaluation errors")
	}
	if _, err := Collect(NewProject(scan, []eval.Func{bad})); err == nil {
		t.Error("project must propagate evaluation errors")
	}
}
