// Package exec implements the physical operators of the Perm engine as
// volcano-style iterators: scans, filters, projections, nested-loop and
// hash joins (all outer-join flavours), hash aggregation (with DISTINCT
// aggregates), sorting, limits, duplicate elimination and bag/set
// operations. The planner (package plan) assembles these into trees.
package exec

import (
	"sort"

	"perm/internal/eval"
	"perm/internal/obs"
	"perm/internal/spill"
	"perm/internal/types"
)

// Node is a volcano iterator. Next returns (nil, nil) at end of stream.
type Node interface {
	Open() error
	Next() (types.Row, error)
	Close() error
}

// Collect drains a node into a slice, handling Open/Close.
func Collect(n Node) ([]types.Row, error) {
	if err := n.Open(); err != nil {
		return nil, err
	}
	defer n.Close()
	var rows []types.Row
	for {
		r, err := n.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return rows, nil
		}
		rows = append(rows, r)
	}
}

// ---------------------------------------------------------------------------
// Scan

// Scan iterates over a materialized row slice (base-table snapshots and
// VALUES lists).
type Scan struct {
	obs.Card
	Rows []types.Row
	// Table names the relation this scan reads ("" for VALUES rows and
	// other anonymous sources). It is not rendered in EXPLAIN; the plan
	// hash folds it in so plans differing only in which equally-sized
	// relation sits where (e.g. a hash-join build-side swap) still hash
	// differently.
	Table string
	pos   int

	// aq, when set, is polled for cooperative cancellation once per
	// cancelStride rows — the row engine's equivalent of a batch
	// boundary.
	aq *obs.ActiveQuery
}

// cancelStride is how many rows a Scan emits between cancellation
// polls; matches the vectorized engine's batch granularity.
const cancelStride = 1024

// NewScan returns a scan over rows.
func NewScan(rows []types.Row) *Scan { return &Scan{Rows: rows} }

// SetActivity attaches the active-query record whose cancellation flag
// the scan polls (nil: never cancelled).
func (s *Scan) SetActivity(aq *obs.ActiveQuery) { s.aq = aq }

func (s *Scan) Open() error { s.pos = 0; return nil }

func (s *Scan) Next() (types.Row, error) {
	if s.pos >= len(s.Rows) {
		return nil, nil
	}
	if s.aq != nil && s.pos%cancelStride == 0 {
		if err := s.aq.CancelErr(); err != nil {
			return nil, err
		}
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, nil
}

func (s *Scan) Close() error { return nil }

// ---------------------------------------------------------------------------
// Filter

// Filter emits input rows whose predicate evaluates to TRUE.
type Filter struct {
	obs.Card
	Input Node
	Pred  eval.Func
	ctx   eval.Ctx
}

// NewFilter returns a filter node.
func NewFilter(input Node, pred eval.Func) *Filter {
	return &Filter{Input: input, Pred: pred}
}

func (f *Filter) Open() error { return f.Input.Open() }

func (f *Filter) Next() (types.Row, error) {
	for {
		r, err := f.Input.Next()
		if err != nil || r == nil {
			return nil, err
		}
		f.ctx.Row = r
		v, err := f.Pred(&f.ctx)
		if err != nil {
			return nil, err
		}
		if v.IsTrue() {
			return r, nil
		}
	}
}

func (f *Filter) Close() error { return f.Input.Close() }

// ---------------------------------------------------------------------------
// Project

// Project computes output expressions over input rows.
type Project struct {
	obs.Card
	Input Node
	Exprs []eval.Func
	ctx   eval.Ctx
}

// NewProject returns a projection node.
func NewProject(input Node, exprs []eval.Func) *Project {
	return &Project{Input: input, Exprs: exprs}
}

func (p *Project) Open() error { return p.Input.Open() }

func (p *Project) Next() (types.Row, error) {
	r, err := p.Input.Next()
	if err != nil || r == nil {
		return nil, err
	}
	p.ctx.Row = r
	out := make(types.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e(&p.ctx)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (p *Project) Close() error { return p.Input.Close() }

// ---------------------------------------------------------------------------
// Joins

// JoinType enumerates physical join types.
type JoinType uint8

// Physical join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	RightJoin
	FullJoin
)

// NestedLoopJoin joins two inputs with an arbitrary condition. The right
// input is materialized at Open. Cond is evaluated over the concatenated
// row; a nil Cond means cross join.
type NestedLoopJoin struct {
	obs.Card
	Left, Right Node
	Cond        eval.Func
	Type        JoinType
	LeftKinds   []types.Kind // for right/full outer padding
	RightKinds  []types.Kind // for left/full outer padding

	rightRows    []types.Row
	rightMatched []bool
	cur          types.Row
	rightPos     int
	leftMatched  bool
	phase        int // 0 probing, 1 emitting unmatched right
	unmatchedPos int
	ctx          eval.Ctx
}

// NewNestedLoopJoin returns a nested-loop join node.
func NewNestedLoopJoin(left, right Node, cond eval.Func, jt JoinType, leftKinds, rightKinds []types.Kind) *NestedLoopJoin {
	return &NestedLoopJoin{Left: left, Right: right, Cond: cond, Type: jt, LeftKinds: leftKinds, RightKinds: rightKinds}
}

func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.rightRows = rows
	if j.Type == RightJoin || j.Type == FullJoin {
		j.rightMatched = make([]bool, len(rows))
	}
	j.cur = nil
	j.phase = 0
	j.unmatchedPos = 0
	return nil
}

func (j *NestedLoopJoin) Next() (types.Row, error) {
	for j.phase == 0 {
		if j.cur == nil {
			r, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			if r == nil {
				if j.Type == RightJoin || j.Type == FullJoin {
					j.phase = 1
					break
				}
				return nil, nil
			}
			j.cur = r
			j.rightPos = 0
			j.leftMatched = false
		}
		for j.rightPos < len(j.rightRows) {
			rr := j.rightRows[j.rightPos]
			idx := j.rightPos
			j.rightPos++
			combined := types.Concat(j.cur, rr)
			if j.Cond != nil {
				j.ctx.Row = combined
				v, err := j.Cond(&j.ctx)
				if err != nil {
					return nil, err
				}
				if !v.IsTrue() {
					continue
				}
			}
			j.leftMatched = true
			if j.rightMatched != nil {
				j.rightMatched[idx] = true
			}
			return combined, nil
		}
		// Left row exhausted against all right rows.
		done := j.cur
		matched := j.leftMatched
		j.cur = nil
		if !matched && (j.Type == LeftJoin || j.Type == FullJoin) {
			return types.Concat(done, types.NullRow(j.RightKinds)), nil
		}
	}
	// Phase 1: unmatched right rows for RIGHT/FULL joins.
	for j.unmatchedPos < len(j.rightRows) {
		idx := j.unmatchedPos
		j.unmatchedPos++
		if !j.rightMatched[idx] {
			return types.Concat(types.NullRow(j.LeftKinds), j.rightRows[idx]), nil
		}
	}
	return nil, nil
}

func (j *NestedLoopJoin) Close() error {
	err := j.Left.Close()
	j.rightRows = nil
	return err
}

// HashJoin is an equi-join on key expressions evaluated per side. NullSafe
// marks keys compared with IS NOT DISTINCT FROM semantics (NULL keys
// match), which the provenance rewriter's join-back conditions require.
// Residual is an extra condition over the concatenated row.
type HashJoin struct {
	obs.Card
	Left, Right Node
	LeftKeys    []eval.Func
	RightKeys   []eval.Func
	NullSafe    []bool
	Residual    eval.Func
	Type        JoinType // InnerJoin, LeftJoin, RightJoin, FullJoin
	LeftKinds   []types.Kind
	RightKinds  []types.Kind

	table        map[uint64][]*hashEntry
	entries      []*hashEntry
	cur          types.Row
	curKey       types.Row
	bucket       []*hashEntry
	bucketPos    int
	leftMatched  bool
	phase        int
	unmatchedPos int
	ctx          eval.Ctx
}

type hashEntry struct {
	key     types.Row
	row     types.Row
	matched bool
}

// NewHashJoin returns a hash join node; build side is the right input.
func NewHashJoin(left, right Node, leftKeys, rightKeys []eval.Func, nullSafe []bool,
	residual eval.Func, jt JoinType, leftKinds, rightKinds []types.Kind) *HashJoin {
	return &HashJoin{
		Left: left, Right: right,
		LeftKeys: leftKeys, RightKeys: rightKeys, NullSafe: nullSafe,
		Residual: residual, Type: jt, LeftKinds: leftKinds, RightKinds: rightKinds,
	}
}

func (j *HashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.table = make(map[uint64][]*hashEntry, len(rows))
	j.entries = j.entries[:0]
	var ctx eval.Ctx
	for _, r := range rows {
		ctx.Row = r
		key := make(types.Row, len(j.RightKeys))
		for i, kf := range j.RightKeys {
			v, err := kf(&ctx)
			if err != nil {
				return err
			}
			key[i] = v
		}
		e := &hashEntry{key: key, row: r}
		h := key.Hash()
		j.table[h] = append(j.table[h], e)
		j.entries = append(j.entries, e)
	}
	j.cur = nil
	j.phase = 0
	j.unmatchedPos = 0
	return nil
}

// keyMatches checks per-key equality with per-key null-safety.
func (j *HashJoin) keyMatches(probe, build types.Row) bool {
	for i := range probe {
		if j.NullSafe[i] {
			if types.Distinct(probe[i], build[i]) {
				return false
			}
		} else {
			if !types.Equal(probe[i], build[i]) {
				return false
			}
		}
	}
	return true
}

func (j *HashJoin) Next() (types.Row, error) {
	for j.phase == 0 {
		if j.cur == nil {
			r, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			if r == nil {
				if j.Type == RightJoin || j.Type == FullJoin {
					j.phase = 1
					break
				}
				return nil, nil
			}
			j.cur = r
			j.leftMatched = false
			j.ctx.Row = r
			key := make(types.Row, len(j.LeftKeys))
			keyHasNull := false
			for i, kf := range j.LeftKeys {
				v, err := kf(&j.ctx)
				if err != nil {
					return nil, err
				}
				key[i] = v
				if v.Null && !j.NullSafe[i] {
					keyHasNull = true
				}
			}
			j.curKey = key
			if keyHasNull {
				j.bucket = nil // a non-null-safe NULL key matches nothing
			} else {
				j.bucket = j.table[key.Hash()]
			}
			j.bucketPos = 0
		}
		for j.bucketPos < len(j.bucket) {
			e := j.bucket[j.bucketPos]
			j.bucketPos++
			if !j.keyMatches(j.curKey, e.key) {
				continue
			}
			combined := types.Concat(j.cur, e.row)
			if j.Residual != nil {
				j.ctx.Row = combined
				v, err := j.Residual(&j.ctx)
				if err != nil {
					return nil, err
				}
				if !v.IsTrue() {
					continue
				}
			}
			j.leftMatched = true
			e.matched = true
			return combined, nil
		}
		done := j.cur
		matched := j.leftMatched
		j.cur = nil
		if !matched && (j.Type == LeftJoin || j.Type == FullJoin) {
			return types.Concat(done, types.NullRow(j.RightKinds)), nil
		}
	}
	for j.unmatchedPos < len(j.entries) {
		e := j.entries[j.unmatchedPos]
		j.unmatchedPos++
		if !e.matched {
			return types.Concat(types.NullRow(j.LeftKinds), e.row), nil
		}
	}
	return nil, nil
}

func (j *HashJoin) Close() error {
	err := j.Left.Close()
	j.table = nil
	j.entries = nil
	return err
}

// ---------------------------------------------------------------------------
// Aggregation

// AggKind enumerates aggregate functions at the physical level.
type AggKind uint8

// Physical aggregate kinds.
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggSpec describes one aggregate to compute.
type AggSpec struct {
	Kind     AggKind
	Arg      eval.Func // nil for COUNT(*)
	Distinct bool
	// ResultKind is the declared output kind (used for typed NULLs and to
	// keep integer sums integral).
	ResultKind types.Kind
}

// HashAgg groups input rows by the group expressions and computes
// aggregates per group. The output row is group values followed by
// aggregate results. With no group expressions the aggregate is global:
// exactly one output row, even for empty input.
type HashAgg struct {
	obs.Card
	Input  Node
	Groups []eval.Func
	Aggs   []AggSpec

	out []types.Row
	pos int
}

// NewHashAgg returns a hash aggregation node.
func NewHashAgg(input Node, groups []eval.Func, aggs []AggSpec) *HashAgg {
	return &HashAgg{Input: input, Groups: groups, Aggs: aggs}
}

type aggState struct {
	count  int64
	sumI   int64
	sumF   float64
	sawany bool
	mmSet  bool // min/max initialized
	min    types.Value
	max    types.Value
	seen   map[uint64][]types.Value // distinct values
}

type aggGroup struct {
	key    types.Row
	states []aggState
}

func (a *HashAgg) Open() error {
	if err := a.Input.Open(); err != nil {
		return err
	}
	defer a.Input.Close()
	groups := make(map[uint64][]*aggGroup)
	var order []*aggGroup
	var ctx eval.Ctx
	for {
		r, err := a.Input.Next()
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		ctx.Row = r
		key := make(types.Row, len(a.Groups))
		for i, g := range a.Groups {
			v, err := g(&ctx)
			if err != nil {
				return err
			}
			key[i] = v
		}
		h := key.Hash()
		var grp *aggGroup
		for _, g := range groups[h] {
			if g.key.EqualNullSafe(key) {
				grp = g
				break
			}
		}
		if grp == nil {
			grp = &aggGroup{key: key, states: make([]aggState, len(a.Aggs))}
			for i := range grp.states {
				if a.Aggs[i].Distinct {
					grp.states[i].seen = make(map[uint64][]types.Value)
				}
			}
			groups[h] = append(groups[h], grp)
			order = append(order, grp)
		}
		for i := range a.Aggs {
			if err := accumulate(&grp.states[i], &a.Aggs[i], &ctx); err != nil {
				return err
			}
		}
	}
	// Global aggregate over empty input: one row of defaults.
	if len(order) == 0 && len(a.Groups) == 0 {
		grp := &aggGroup{states: make([]aggState, len(a.Aggs))}
		order = append(order, grp)
	}
	a.out = a.out[:0]
	for _, grp := range order {
		row := make(types.Row, 0, len(grp.key)+len(a.Aggs))
		row = append(row, grp.key...)
		for i := range a.Aggs {
			row = append(row, finalize(&grp.states[i], &a.Aggs[i]))
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

func accumulate(st *aggState, spec *AggSpec, ctx *eval.Ctx) error {
	if spec.Kind == AggCountStar {
		st.count++
		return nil
	}
	v, err := spec.Arg(ctx)
	if err != nil {
		return err
	}
	if v.Null {
		return nil
	}
	if spec.Distinct {
		h := v.Hash()
		for _, seen := range st.seen[h] {
			if !types.Distinct(seen, v) {
				return nil
			}
		}
		st.seen[h] = append(st.seen[h], v)
	}
	st.sawany = true
	switch spec.Kind {
	case AggCount:
		st.count++
	case AggSum, AggAvg:
		st.count++
		if v.K == types.KindInt {
			st.sumI += v.I
			st.sumF += float64(v.I)
		} else {
			st.sumF += v.AsFloat()
		}
	case AggMin:
		if !st.mmSet || types.Compare(v, st.min) < 0 {
			st.min = v
			st.mmSet = true
		}
	case AggMax:
		if !st.mmSet || types.Compare(v, st.max) > 0 {
			st.max = v
			st.mmSet = true
		}
	}
	return nil
}

func finalize(st *aggState, spec *AggSpec) types.Value {
	switch spec.Kind {
	case AggCount, AggCountStar:
		return types.NewInt(st.count)
	case AggSum:
		if !st.sawany {
			return types.NewNull(spec.ResultKind)
		}
		if spec.ResultKind == types.KindInt {
			return types.NewInt(st.sumI)
		}
		return types.NewFloat(st.sumF)
	case AggAvg:
		if !st.sawany || st.count == 0 {
			return types.NewNull(types.KindFloat)
		}
		return types.NewFloat(st.sumF / float64(st.count))
	case AggMin:
		if !st.sawany {
			return types.NewNull(spec.ResultKind)
		}
		return st.min
	case AggMax:
		if !st.sawany {
			return types.NewNull(spec.ResultKind)
		}
		return st.max
	default:
		return types.NullValue
	}
}

func (a *HashAgg) Next() (types.Row, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, nil
}

func (a *HashAgg) Close() error {
	a.out = nil
	return nil
}

// ---------------------------------------------------------------------------
// Sort / Limit / Distinct

// SortKey is one ordering key: position in the input row plus direction.
type SortKey struct {
	Pos  int
	Desc bool
}

// Sort materializes and orders its input. NULLs sort last ascending,
// first descending (PostgreSQL default). Under a memory budget (Spill)
// it becomes an external merge sort over row-encoded spill runs; the
// merged order is identical to the in-memory stable sort's because runs
// hold consecutive input segments and ties resolve to the earlier run.
type Sort struct {
	obs.Card
	Input Node
	Keys  []SortKey
	Spill spill.Resources

	rows     []types.Row
	pos      int
	accBytes int64
	pending  int64
	runs     []*spill.RowRun
	merger   *rowRunMerger
}

// NewSort returns a sort node.
func NewSort(input Node, keys []SortKey) *Sort { return &Sort{Input: input, Keys: keys} }

// Spilled reports whether the sort went external.
func (s *Sort) Spilled() bool { return len(s.runs) > 0 }

// sortGrowQuantum batches the reservation's atomic traffic: the sort
// asks for memory in chunks of this size rather than per row.
const sortGrowQuantum = 16 << 10

// rowBytes estimates the heap footprint of one boxed row.
func rowBytes(r types.Row) int64 {
	n := int64(24 + 48*len(r))
	for _, v := range r {
		n += int64(len(v.S))
	}
	return n
}

func (s *Sort) sortRows() {
	sort.SliceStable(s.rows, func(i, j int) bool {
		for _, k := range s.Keys {
			c := compareForSort(s.rows[i][k.Pos], s.rows[j][k.Pos])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// flushRun sorts the accumulated segment, writes it as one run and
// releases its memory.
func (s *Sort) flushRun() error {
	if len(s.rows) == 0 {
		return nil
	}
	s.sortRows()
	run, err := spill.NewRowRun(s.Spill.Dir)
	if err != nil {
		return err
	}
	for _, r := range s.rows {
		if err := run.WriteRow(r); err != nil {
			run.Close() //nolint:errcheck — unwinding after a failed write
			return err
		}
	}
	if err := run.Finish(); err != nil {
		run.Close() //nolint:errcheck
		return err
	}
	s.Spill.Res.NoteSpill(run.Bytes())
	s.runs = append(s.runs, run)
	s.rows = nil
	s.Spill.Res.Release(s.accBytes)
	s.accBytes = 0
	return nil
}

func (s *Sort) Open() (err error) {
	s.rows, s.pos = nil, 0
	s.accBytes, s.pending = 0, 0
	s.merger = nil
	s.closeRuns()
	// A failed Open never sees a matching Close from the parent: unwind
	// the spill state here (reserved bytes, written runs).
	defer func() {
		if err != nil {
			s.closeRuns()
			s.rows = nil
			s.accBytes, s.pending = 0, 0
			s.Spill.Res.ReleaseAll()
		}
	}()
	if err := s.Input.Open(); err != nil {
		return err
	}
	budgeted := s.Spill.Enabled()
	for {
		r, err := s.Input.Next()
		if err != nil {
			s.Input.Close() //nolint:errcheck — unwinding after a failed drain
			return err
		}
		if r == nil {
			break
		}
		s.rows = append(s.rows, r)
		if budgeted {
			s.pending += rowBytes(r)
			if s.pending >= sortGrowQuantum {
				if !s.Spill.Res.Grow(s.pending) {
					if err := s.flushRun(); err != nil {
						s.Input.Close() //nolint:errcheck
						return err
					}
					s.Spill.Res.Force(s.pending)
				}
				s.accBytes += s.pending
				s.pending = 0
			}
		}
	}
	if err := s.Input.Close(); err != nil {
		return err
	}
	if s.pending > 0 {
		s.Spill.Res.Force(s.pending)
		s.accBytes += s.pending
		s.pending = 0
	}
	if len(s.runs) == 0 {
		s.sortRows()
		return nil
	}
	if err := s.flushRun(); err != nil {
		return err
	}
	s.runs, err = s.reduceRuns()
	if err != nil {
		return err
	}
	s.merger, err = newRowRunMerger(s.runs, s.Keys)
	return err
}

// compareForSort orders values treating NULL as greater than everything
// (NULLS LAST ascending).
func compareForSort(a, b types.Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return 1
	case b.Null:
		return -1
	default:
		return types.Compare(a, b)
	}
}

func (s *Sort) Next() (types.Row, error) {
	if s.merger != nil {
		return s.merger.next()
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

func (s *Sort) closeRuns() {
	for _, r := range s.runs {
		r.Close() //nolint:errcheck — temp storage, already unlinked
	}
	s.runs = nil
}

func (s *Sort) Close() error {
	s.rows = nil
	s.merger = nil
	s.closeRuns()
	s.accBytes, s.pending = 0, 0
	s.Spill.Res.ReleaseAll()
	return nil
}

// sortMergeFanIn caps how many runs one merge pass reads; more runs
// trigger intermediate passes (multi-pass external sort).
const sortMergeFanIn = 8

// reduceRuns merges runs down to the fan-in, earliest segments first so
// the tie-break order survives intermediate passes.
func (s *Sort) reduceRuns() ([]*spill.RowRun, error) {
	runs := s.runs
	for len(runs) > sortMergeFanIn {
		m, err := newRowRunMerger(runs[:sortMergeFanIn], s.Keys)
		if err != nil {
			return runs, err
		}
		out, err := spill.NewRowRun(s.Spill.Dir)
		if err != nil {
			return runs, err
		}
		for {
			r, err := m.next()
			if err != nil {
				out.Close() //nolint:errcheck
				return runs, err
			}
			if r == nil {
				break
			}
			if err := out.WriteRow(r); err != nil {
				out.Close() //nolint:errcheck
				return runs, err
			}
		}
		if err := out.Finish(); err != nil {
			out.Close() //nolint:errcheck
			return runs, err
		}
		s.Spill.Res.NoteSpill(out.Bytes())
		for _, r := range runs[:sortMergeFanIn] {
			r.Close() //nolint:errcheck
		}
		runs = append([]*spill.RowRun{out}, runs[sortMergeFanIn:]...)
	}
	return runs, nil
}

// rowRunMerger is a k-way streaming merge over sorted row runs; ties
// resolve to the lower run index (stability across segments).
type rowRunMerger struct {
	runs []*spill.RowRun
	cur  []types.Row // current head row per run, nil = exhausted
	keys []SortKey
	heap []int
}

func newRowRunMerger(runs []*spill.RowRun, keys []SortKey) (*rowRunMerger, error) {
	m := &rowRunMerger{runs: runs, cur: make([]types.Row, len(runs)), keys: keys}
	for i, r := range runs {
		row, err := r.ReadRow()
		if err != nil {
			return nil, err
		}
		m.cur[i] = row
		if row != nil {
			m.heap = append(m.heap, i)
		}
	}
	spill.Heapify(m.heap, m.less)
	return m, nil
}

func (m *rowRunMerger) less(a, b int) bool {
	for _, k := range m.keys {
		c := compareForSort(m.cur[a][k.Pos], m.cur[b][k.Pos])
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return a < b
}

func (m *rowRunMerger) next() (types.Row, error) {
	if len(m.heap) == 0 {
		return nil, nil
	}
	ri := m.heap[0]
	out := m.cur[ri]
	row, err := m.runs[ri].ReadRow()
	if err != nil {
		return nil, err
	}
	m.cur[ri] = row
	if row == nil {
		m.heap[0] = m.heap[len(m.heap)-1]
		m.heap = m.heap[:len(m.heap)-1]
	}
	spill.DownHeap(m.heap, 0, m.less)
	return out, nil
}

// Limit emits at most Count rows after skipping Offset rows. A negative
// Count means no limit.
type Limit struct {
	obs.Card
	Input   Node
	Count   int64
	Offset  int64
	emitted int64
	skipped int64
}

// NewLimit returns a limit node.
func NewLimit(input Node, count, offset int64) *Limit {
	return &Limit{Input: input, Count: count, Offset: offset}
}

func (l *Limit) Open() error {
	l.emitted, l.skipped = 0, 0
	return l.Input.Open()
}

func (l *Limit) Next() (types.Row, error) {
	for l.skipped < l.Offset {
		r, err := l.Input.Next()
		if err != nil || r == nil {
			return nil, err
		}
		l.skipped++
	}
	if l.Count >= 0 && l.emitted >= l.Count {
		return nil, nil
	}
	r, err := l.Input.Next()
	if err != nil || r == nil {
		return nil, err
	}
	l.emitted++
	return r, nil
}

func (l *Limit) Close() error { return l.Input.Close() }

// Distinct removes duplicate rows (null-safe row equality).
type Distinct struct {
	obs.Card
	Input Node
	seen  map[uint64][]types.Row
}

// NewDistinct returns a duplicate-elimination node.
func NewDistinct(input Node) *Distinct { return &Distinct{Input: input} }

func (d *Distinct) Open() error {
	d.seen = make(map[uint64][]types.Row)
	return d.Input.Open()
}

func (d *Distinct) Next() (types.Row, error) {
	for {
		r, err := d.Input.Next()
		if err != nil || r == nil {
			return nil, err
		}
		h := r.Hash()
		dup := false
		for _, prev := range d.seen[h] {
			if prev.EqualNullSafe(r) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.seen[h] = append(d.seen[h], r)
		return r, nil
	}
}

func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}

// ---------------------------------------------------------------------------
// Set operations

// SetOpKind enumerates physical set operations.
type SetOpKind uint8

// Physical set operations.
const (
	Union SetOpKind = iota
	Intersect
	Except
)

// SetOp computes a bag or set operation over two inputs, implementing the
// multiset semantics of the paper's Fig. 1: UNION ALL adds multiplicities,
// INTERSECT ALL takes the minimum, EXCEPT ALL subtracts; the set variants
// apply DISTINCT projection to the multiset result.
type SetOp struct {
	obs.Card
	Left, Right Node
	Kind        SetOpKind
	All         bool

	out []types.Row
	pos int
}

// NewSetOp returns a set operation node.
func NewSetOp(left, right Node, kind SetOpKind, all bool) *SetOp {
	return &SetOp{Left: left, Right: right, Kind: kind, All: all}
}

type setOpEntry struct {
	row  types.Row
	n, m int64 // multiplicities in left and right input
}

func (s *SetOp) Open() error {
	leftRows, err := Collect(s.Left)
	if err != nil {
		return err
	}
	rightRows, err := Collect(s.Right)
	if err != nil {
		return err
	}
	if s.Kind == Union && s.All {
		s.out = append(append([]types.Row{}, leftRows...), rightRows...)
		s.pos = 0
		return nil
	}
	table := make(map[uint64][]*setOpEntry)
	var order []*setOpEntry
	add := func(r types.Row, left bool) {
		h := r.Hash()
		var e *setOpEntry
		for _, cand := range table[h] {
			if cand.row.EqualNullSafe(r) {
				e = cand
				break
			}
		}
		if e == nil {
			e = &setOpEntry{row: r}
			table[h] = append(table[h], e)
			order = append(order, e)
		}
		if left {
			e.n++
		} else {
			e.m++
		}
	}
	for _, r := range leftRows {
		add(r, true)
	}
	for _, r := range rightRows {
		add(r, false)
	}
	s.out = s.out[:0]
	for _, e := range order {
		var count int64
		switch s.Kind {
		case Union:
			// set semantics: distinct union
			if e.n+e.m > 0 {
				count = 1
			}
		case Intersect:
			count = minInt64(e.n, e.m)
			if !s.All && count > 0 {
				count = 1
			}
		case Except:
			if s.All {
				count = e.n - e.m
			} else if e.n > 0 && e.m == 0 {
				count = 1
			}
		}
		for i := int64(0); i < count; i++ {
			s.out = append(s.out, e.row)
		}
	}
	s.pos = 0
	return nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (s *SetOp) Next() (types.Row, error) {
	if s.pos >= len(s.out) {
		return nil, nil
	}
	r := s.out[s.pos]
	s.pos++
	return r, nil
}

func (s *SetOp) Close() error {
	s.out = nil
	return nil
}
