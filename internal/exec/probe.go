package exec

import (
	"time"

	"perm/internal/obs"
	"perm/internal/types"
)

// Probe is the EXPLAIN ANALYZE instrumentation wrapper for row
// operators: it forwards every call to the wrapped node and records wall
// time per phase plus the emitted row count into Stats. Probes exist
// only in instrumented trees (plan.Instrument inserts them after
// planning), so plain execution never pays for them.
type Probe struct {
	Input Node
	Stats *obs.OpStats
}

// NewProbe wraps n with a fresh stats collector.
func NewProbe(n Node) *Probe { return &Probe{Input: n, Stats: &obs.OpStats{}} }

func (p *Probe) Open() error {
	t0 := time.Now()
	err := p.Input.Open()
	p.Stats.OpenNS += time.Since(t0).Nanoseconds()
	return err
}

func (p *Probe) Next() (types.Row, error) {
	t0 := time.Now()
	r, err := p.Input.Next()
	p.Stats.NextNS += time.Since(t0).Nanoseconds()
	if r != nil {
		p.Stats.Rows++
	}
	return r, err
}

func (p *Probe) Close() error {
	t0 := time.Now()
	err := p.Input.Close()
	p.Stats.CloseNS += time.Since(t0).Nanoseconds()
	return err
}
