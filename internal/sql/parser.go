package sql

import (
	"fmt"
	"strconv"
	"strings"

	"perm/internal/types"
)

// Parser is a recursive-descent parser with buffered lookahead.
type Parser struct {
	lex   *Lexer
	tok   Token
	queue []Token // buffered lookahead tokens
	src   string
}

// NewParser returns a parser over src positioned at the first token.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lex: NewLexer(src), src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

// Parse parses a single statement from src. Trailing semicolons are allowed.
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("empty statement")
	}
	if len(stmts) > 1 {
		return nil, fmt.Errorf("expected a single statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated list of statements.
func ParseAll(src string) ([]Statement, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	var stmts []Statement
	for {
		for p.tok.Kind == TokOp && p.tok.Text == ";" {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.Kind == TokEOF {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if p.tok.Kind != TokEOF && !(p.tok.Kind == TokOp && p.tok.Text == ";") {
			return nil, p.errorf("expected ';' or end of input, found %s", p.tok)
		}
	}
}

func (p *Parser) advance() error {
	if len(p.queue) > 0 {
		p.tok = p.queue[0]
		p.queue = p.queue[1:]
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peekTok returns the next token without consuming it.
func (p *Parser) peekTok() (Token, error) { return p.peekN(0) }

// peekN returns the i-th lookahead token (0 = the token after p.tok).
func (p *Parser) peekN(i int) (Token, error) {
	for len(p.queue) <= i {
		t, err := p.lex.Next()
		if err != nil {
			return Token{}, err
		}
		p.queue = append(p.queue, t)
		if t.Kind == TokEOF {
			break
		}
	}
	if i < len(p.queue) {
		return p.queue[i], nil
	}
	return Token{Kind: TokEOF}, nil
}

// peeksAtSelect reports whether the parenthesized group starting at the
// current "(" token opens a SELECT (possibly behind further parentheses),
// distinguishing derived tables from parenthesized join expressions.
func (p *Parser) peeksAtSelect() (bool, error) {
	for i := 0; ; i++ {
		t, err := p.peekN(i)
		if err != nil {
			return false, err
		}
		if t.Kind == TokOp && t.Text == "(" {
			continue
		}
		return t.Kind == TokKeyword && t.Text == "SELECT", nil
	}
}

// parserState snapshots the parser for bounded backtracking. The only
// construct needing it is the FROM-clause ambiguity between a derived
// table "((SELECT ...) UNION ...)" and a parenthesized join
// "((SELECT ...) AS x JOIN y)".
type parserState struct {
	lexPos int
	tok    Token
	queue  []Token
}

func (p *Parser) save() parserState {
	return parserState{
		lexPos: p.lex.pos,
		tok:    p.tok,
		queue:  append([]Token(nil), p.queue...),
	}
}

func (p *Parser) restore(st parserState) {
	p.lex.pos = st.lexPos
	p.tok = st.tok
	p.queue = st.queue
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return &Error{Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...), Src: p.src}
}

func (p *Parser) isKeyword(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == kw
}

func (p *Parser) isOp(op string) bool {
	return p.tok.Kind == TokOp && p.tok.Text == op
}

// accept consumes the token if it is the given keyword and reports whether
// it did.
func (p *Parser) accept(kw string) (bool, error) {
	if p.isKeyword(kw) {
		return true, p.advance()
	}
	return false, nil
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *Parser) expectOp(op string) error {
	if !p.isOp(op) {
		return p.errorf("expected %q, found %s", op, p.tok)
	}
	return p.advance()
}

func (p *Parser) expectIdent() (string, error) {
	// Non-reserved use of some keywords as identifiers is intentionally not
	// supported; quote them instead.
	if p.tok.Kind != TokIdent {
		return "", p.errorf("expected identifier, found %s", p.tok)
	}
	name := p.tok.Text
	return name, p.advance()
}

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("SELECT") || p.isOp("("):
		return p.parseSelectStmt()
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("DROP"):
		return p.parseDrop()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("EXPLAIN"):
		return p.parseExplain()
	case p.isKeyword("CANCEL"):
		return p.parseCancel()
	default:
		return nil, p.errorf("expected a statement, found %s", p.tok)
	}
}

func (p *Parser) parseExplain() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	rewrite, err := p.accept("REWRITE")
	if err != nil {
		return nil, err
	}
	analyze := false
	if !rewrite {
		analyze, err = p.accept("ANALYZE")
		if err != nil {
			return nil, err
		}
	}
	sel, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	return &ExplainStmt{Rewrite: rewrite, Analyze: analyze, Query: sel}, nil
}

func (p *Parser) parseCancel() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	// Query IDs (q12) lex as identifiers; accept a string literal too so
	// clients can always quote.
	if p.tok.Kind != TokIdent && p.tok.Kind != TokString {
		return nil, p.errorf("expected a query ID after CANCEL, found %s", p.tok)
	}
	id := p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &CancelStmt{ID: id}, nil
}

// ---------------------------------------------------------------------------
// SELECT

// parseSelectStmt parses a full select with set operations, ORDER BY and
// LIMIT at the outermost level.
func (p *Parser) parseSelectStmt() (*SelectStmt, error) {
	sel, err := p.parseSetOpTree(0)
	if err != nil {
		return nil, err
	}
	// ORDER BY / LIMIT / OFFSET bind to the whole set-operation tree.
	if p.isKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.isKeyword("ASC") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.isKeyword("DESC") {
				item.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.isKeyword("LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKeyword("ALL") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Limit = e
		}
	}
	if p.isKeyword("OFFSET") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	return sel, nil
}

// setOpPrec gives UNION/EXCEPT lower precedence than INTERSECT, as in
// standard SQL.
func setOpPrec(k SetOpKind) int {
	if k == SetIntersect {
		return 2
	}
	return 1
}

func (p *Parser) parseSetOpTree(minPrec int) (*SelectStmt, error) {
	left, err := p.parseSelectPrimary()
	if err != nil {
		return nil, err
	}
	for {
		var op SetOpKind
		switch {
		case p.isKeyword("UNION"):
			op = SetUnion
		case p.isKeyword("INTERSECT"):
			op = SetIntersect
		case p.isKeyword("EXCEPT"):
			op = SetExcept
		default:
			return left, nil
		}
		prec := setOpPrec(op)
		if prec < minPrec {
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		all := false
		if p.isKeyword("ALL") {
			all = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.isKeyword("DISTINCT") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		right, err := p.parseSetOpTree(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &SelectStmt{Op: op, All: all, Left: left, Right: right}
	}
}

// parseSelectPrimary parses a simple SELECT or a parenthesized select.
func (p *Parser) parseSelectPrimary() (*SelectStmt, error) {
	if p.isOp("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		sel, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return sel, nil
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if ok, err := p.accept("PROVENANCE"); err != nil {
		return nil, err
	} else if ok {
		sel.Provenance = true
	}
	if ok, err := p.accept("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		sel.Distinct = true
	}
	if _, err := p.accept("ALL"); err != nil {
		return nil, err
	}
	// Select list.
	for {
		t, err := p.parseSelectTarget()
		if err != nil {
			return nil, err
		}
		sel.Targets = append(sel.Targets, t)
		if !p.isOp(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.isKeyword("INTO") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sel.Into = name
	}
	if p.isKeyword("FROM") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, te)
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.isKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.isKeyword("HAVING") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	return sel, nil
}

func (p *Parser) parseSelectTarget() (SelectTarget, error) {
	if p.isOp("*") {
		if err := p.advance(); err != nil {
			return SelectTarget{}, err
		}
		return SelectTarget{Star: true}, nil
	}
	// Qualified star: ident '.' '*'
	if p.tok.Kind == TokIdent {
		nxt, err := p.peekTok()
		if err != nil {
			return SelectTarget{}, err
		}
		if nxt.Kind == TokOp && nxt.Text == "." {
			// Look two ahead is awkward with one-token lookahead; parse the
			// qualifier, then check for '*'.
			table := p.tok.Text
			if err := p.advance(); err != nil { // consume ident
				return SelectTarget{}, err
			}
			if err := p.advance(); err != nil { // consume '.'
				return SelectTarget{}, err
			}
			if p.isOp("*") {
				if err := p.advance(); err != nil {
					return SelectTarget{}, err
				}
				return SelectTarget{Star: true, Table: table}, nil
			}
			col, err := p.expectIdent()
			if err != nil {
				return SelectTarget{}, err
			}
			e, err := p.parsePostfixFrom(&ColumnRef{Table: table, Column: col})
			if err != nil {
				return SelectTarget{}, err
			}
			return p.finishTarget(e)
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectTarget{}, err
	}
	return p.finishTarget(e)
}

func (p *Parser) finishTarget(e Expr) (SelectTarget, error) {
	t := SelectTarget{Expr: e}
	if p.isKeyword("AS") {
		if err := p.advance(); err != nil {
			return t, err
		}
		alias, err := p.expectIdent()
		if err != nil {
			return t, err
		}
		t.Alias = alias
		return t, nil
	}
	if p.tok.Kind == TokIdent {
		t.Alias = p.tok.Text
		return t, p.advance()
	}
	return t, nil
}

// parsePostfixFrom continues expression parsing after a primary that was
// already consumed (used by the qualified-star lookahead path). It applies
// the same operator climbing as parseExpr.
func (p *Parser) parsePostfixFrom(e Expr) (Expr, error) {
	return p.parseBinaryRHS(e, 0)
}

// ---------------------------------------------------------------------------
// FROM clause

func (p *Parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.isKeyword("JOIN") || p.isKeyword("INNER"):
			kind = JoinInner
		case p.isKeyword("LEFT"):
			kind = JoinLeft
		case p.isKeyword("RIGHT"):
			kind = JoinRight
		case p.isKeyword("FULL"):
			kind = JoinFull
		case p.isKeyword("CROSS"):
			kind = JoinCross
		default:
			return left, nil
		}
		// Consume join keywords: [INNER|LEFT|RIGHT|FULL|CROSS] [OUTER] JOIN
		if !p.isKeyword("JOIN") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.accept("OUTER"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		join := &JoinExpr{Kind: kind, Left: left, Right: right}
		if kind != JoinCross {
			switch {
			case p.isKeyword("ON"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				join.On = cond
			case p.isKeyword("USING"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				for {
					col, err := p.expectIdent()
					if err != nil {
						return nil, err
					}
					join.Using = append(join.Using, col)
					if !p.isOp(",") {
						break
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			default:
				return nil, p.errorf("expected ON or USING after JOIN, found %s", p.tok)
			}
		}
		left = join
	}
}

func (p *Parser) parseTablePrimary() (TableExpr, error) {
	if p.isOp("(") {
		// Subquery (possibly a parenthesized set operation) or
		// parenthesized join expression.
		isSelect, err := p.peeksAtSelect()
		if err != nil {
			return nil, err
		}
		if isSelect {
			// Try the derived-table interpretation first; on failure fall
			// back to a parenthesized join whose first item is a subquery.
			st := p.save()
			sub, err := p.tryParseDerivedTable()
			if err == nil {
				return sub, nil
			}
			p.restore(st)
		}
		// Parenthesized table expression (joins).
		if err := p.advance(); err != nil {
			return nil, err
		}
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return te, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tn := &TableName{Name: name}
	if err := p.parseFromItemSuffix(&tn.Alias, &tn.ProvAttrs, &tn.BaseRelation); err != nil {
		return nil, err
	}
	return tn, nil
}

// tryParseDerivedTable parses "(" select ")" [suffix]; the caller
// restores the parser state when it fails.
func (p *Parser) tryParseDerivedTable() (TableExpr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	sub := &SubqueryExpr{Query: q}
	if err := p.parseFromItemSuffix(&sub.Alias, &sub.ProvAttrs, &sub.BaseRelation); err != nil {
		return nil, err
	}
	return sub, nil
}

// parseFromItemSuffix parses [AS alias | alias] [BASERELATION]
// [PROVENANCE (attr, ...)] in any of the orders the paper's examples use:
// the annotations follow "the text of the from-clause item" (§IV-A3), and
// the BASERELATION example places the keyword before the alias.
func (p *Parser) parseFromItemSuffix(alias *string, provAttrs *[]string, baseRel *bool) error {
	for {
		switch {
		case p.isKeyword("AS"):
			if err := p.advance(); err != nil {
				return err
			}
			a, err := p.expectIdent()
			if err != nil {
				return err
			}
			*alias = a
		case p.tok.Kind == TokIdent && *alias == "":
			*alias = p.tok.Text
			if err := p.advance(); err != nil {
				return err
			}
		case p.isKeyword("BASERELATION"):
			*baseRel = true
			if err := p.advance(); err != nil {
				return err
			}
		case p.isKeyword("PROVENANCE"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectOp("("); err != nil {
				return err
			}
			for {
				a, err := p.expectIdent()
				if err != nil {
					return err
				}
				*provAttrs = append(*provAttrs, a)
				if !p.isOp(",") {
					break
				}
				if err := p.advance(); err != nil {
					return err
				}
			}
			if err := p.expectOp(")"); err != nil {
				return err
			}
			if *provAttrs == nil {
				*provAttrs = []string{}
			}
		default:
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// DDL / DML

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch {
	case p.isKeyword("TABLE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		stmt := &CreateTableStmt{}
		if p.isKeyword("IF") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			stmt.IfNotExists = true
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.Name = name
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		for {
			if p.isKeyword("PRIMARY") {
				// PRIMARY KEY (cols) — accepted and ignored (no constraints).
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				if err := p.skipParens(); err != nil {
					return nil, err
				}
			} else {
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				typName := p.tok.Text
				if p.tok.Kind != TokIdent && p.tok.Kind != TokKeyword {
					return nil, p.errorf("expected type name, found %s", p.tok)
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
				kind, ok := TypeFromName(typName)
				if !ok {
					return nil, p.errorf("unknown type %q", typName)
				}
				// optional (n) or (n,m) length spec — ignored
				if p.isOp("(") {
					if err := p.skipParens(); err != nil {
						return nil, err
					}
				}
				// optional NOT NULL / PRIMARY KEY — accepted and ignored
				for {
					switch {
					case p.isKeyword("NOT"):
						if err := p.advance(); err != nil {
							return nil, err
						}
						if err := p.expectKeyword("NULL"); err != nil {
							return nil, err
						}
					case p.isKeyword("PRIMARY"):
						if err := p.advance(); err != nil {
							return nil, err
						}
						if err := p.expectKeyword("KEY"); err != nil {
							return nil, err
						}
					default:
						goto colDone
					}
				}
			colDone:
				stmt.Cols = append(stmt.Cols, ColumnDef{Name: col, Type: kind})
			}
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return stmt, nil
	case p.isKeyword("VIEW"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, Query: q}, nil
	case p.isKeyword("OR"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokIdent || p.tok.Text != "replace" {
			return nil, p.errorf("expected REPLACE after CREATE OR")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, Query: q, OrReplace: true}, nil
	default:
		return nil, p.errorf("expected TABLE or VIEW after CREATE, found %s", p.tok)
	}
}

// skipParens skips a balanced parenthesized token run starting at '('.
func (p *Parser) skipParens() error {
	if err := p.expectOp("("); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		if p.tok.Kind == TokEOF {
			return p.errorf("unbalanced parentheses")
		}
		if p.isOp("(") {
			depth++
		} else if p.isOp(")") {
			depth--
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	return nil
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt := &DropStmt{}
	switch {
	case p.isKeyword("TABLE"):
	case p.isKeyword("VIEW"):
		stmt.View = true
	default:
		return nil, p.errorf("expected TABLE or VIEW after DROP")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.isKeyword("IF") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	return stmt, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.isOp("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, col)
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.isKeyword("VALUES") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.isOp(",") {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			stmt.Values = append(stmt.Values, row)
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		return stmt, nil
	}
	q, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	stmt.Query = q
	return stmt, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

// Precedence levels, loosest to tightest:
//
//	1 OR
//	2 AND
//	3 NOT (prefix, handled in unary)
//	4 comparison (= <> < <= > >= LIKE IN BETWEEN IS)
//	5 + - ||
//	6 * / %
//	7 unary - +
func (p *Parser) parseExpr() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseBinaryRHS(lhs, 0)
}

func (p *Parser) binPrec() (int, string) {
	if p.tok.Kind == TokKeyword {
		switch p.tok.Text {
		case "OR":
			return 1, "OR"
		case "AND":
			return 2, "AND"
		case "LIKE", "IN", "BETWEEN", "IS", "NOT":
			return 4, p.tok.Text
		}
		return 0, ""
	}
	if p.tok.Kind != TokOp {
		return 0, ""
	}
	switch p.tok.Text {
	case "=", "<>", "<", "<=", ">", ">=":
		return 4, p.tok.Text
	case "+", "-", "||":
		return 5, p.tok.Text
	case "*", "/", "%":
		return 6, p.tok.Text
	}
	return 0, ""
}

func (p *Parser) parseBinaryRHS(lhs Expr, minPrec int) (Expr, error) {
	for {
		prec, op := p.binPrec()
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		// Special comparison-level forms.
		if prec == 4 {
			var err error
			lhs, err = p.parseComparison(lhs)
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		for {
			nprec, _ := p.binPrec()
			if nprec <= prec {
				break
			}
			rhs, err = p.parseBinaryRHS(rhs, nprec)
			if err != nil {
				return nil, err
			}
		}
		lhs = &BinExpr{Op: op, Left: lhs, Right: rhs}
	}
}

// parseComparison handles the comparison level: cmp ops, [NOT] LIKE,
// [NOT] IN, [NOT] BETWEEN, IS [NOT] NULL/DISTINCT FROM, and quantified
// comparisons (op ANY/ALL (subquery)).
func (p *Parser) parseComparison(lhs Expr) (Expr, error) {
	not := false
	if p.isKeyword("NOT") {
		// Only valid before LIKE/IN/BETWEEN at this level.
		if err := p.advance(); err != nil {
			return nil, err
		}
		not = true
		if !p.isKeyword("LIKE") && !p.isKeyword("IN") && !p.isKeyword("BETWEEN") {
			return nil, p.errorf("expected LIKE, IN or BETWEEN after NOT, found %s", p.tok)
		}
	}
	switch {
	case p.isKeyword("IS"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		isNot := false
		if p.isKeyword("NOT") {
			isNot = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		switch {
		case p.isKeyword("NULL"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &IsNullExpr{Expr: lhs, Not: isNot}, nil
		case p.isKeyword("DISTINCT"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("FROM"); err != nil {
				return nil, err
			}
			rhs, err := p.parseAdditiveOperand()
			if err != nil {
				return nil, err
			}
			return &DistinctExpr{Left: lhs, Right: rhs, Not: isNot}, nil
		case p.isKeyword("TRUE") || p.isKeyword("FALSE"):
			val := p.isKeyword("TRUE")
			if err := p.advance(); err != nil {
				return nil, err
			}
			cmp := Expr(&BinExpr{Op: "=", Left: lhs, Right: &Lit{Val: types.NewBool(val)}})
			if isNot {
				cmp = &UnaryExpr{Op: "NOT", Expr: cmp}
			}
			return cmp, nil
		default:
			return nil, p.errorf("expected NULL, DISTINCT, TRUE or FALSE after IS")
		}
	case p.isKeyword("LIKE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseAdditiveOperand()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinExpr{Op: "LIKE", Left: lhs, Right: rhs}
		if not {
			e = &UnaryExpr{Op: "NOT", Expr: e}
		}
		return e, nil
	case p.isKeyword("BETWEEN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.parseAdditiveOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditiveOperand()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: lhs, Lo: lo, Hi: hi, Not: not}, nil
	case p.isKeyword("IN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.isKeyword("SELECT") {
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &SubqueryRef{Kind: SubIn, Test: lhs, Op: "=", Not: not, Query: q}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InListExpr{Expr: lhs, List: list, Not: not}, nil
	default:
		// plain comparison operator, possibly quantified
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKeyword("ANY") || p.isKeyword("SOME") || p.isKeyword("ALL") {
			kind := SubAny
			if p.isKeyword("ALL") {
				kind = SubAll
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &SubqueryRef{Kind: kind, Test: lhs, Op: op, Query: q}, nil
		}
		rhs, err := p.parseAdditiveOperand()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, Left: lhs, Right: rhs}, nil
	}
}

// parseAdditiveOperand parses an operand at additive precedence or tighter
// (the right-hand side of a comparison).
func (p *Parser) parseAdditiveOperand() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseBinaryRHS(lhs, 5)
}

func (p *Parser) parseUnary() (Expr, error) {
	switch {
	case p.isKeyword("NOT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		// NOT binds looser than comparisons: parse a full comparison-level
		// expression beneath it.
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		inner, err = p.parseBinaryRHS(inner, 4)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: inner}, nil
	case p.isOp("-"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*Lit); ok && lit.Val.K == types.KindInt {
			return &Lit{Val: types.NewInt(-lit.Val.I)}, nil
		}
		if lit, ok := inner.(*Lit); ok && lit.Val.K == types.KindFloat {
			return &Lit{Val: types.NewFloat(-lit.Val.F)}, nil
		}
		return &UnaryExpr{Op: "-", Expr: inner}, nil
	case p.isOp("+"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseUnary()
	default:
		return p.parsePrimary()
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.Kind == TokNumber:
		text := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if strings.ContainsAny(text, ".eE") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", text)
			}
			return &Lit{Val: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(text, 64)
			if ferr != nil {
				return nil, p.errorf("invalid number %q", text)
			}
			return &Lit{Val: types.NewFloat(f)}, nil
		}
		return &Lit{Val: types.NewInt(i)}, nil
	case p.tok.Kind == TokString:
		s := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: types.NewString(s)}, nil
	case p.isKeyword("NULL"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: types.NullValue}, nil
	case p.isKeyword("TRUE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: types.NewBool(true)}, nil
	case p.isKeyword("FALSE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: types.NewBool(false)}, nil
	case p.isKeyword("DATE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokString {
			return nil, p.errorf("expected string after DATE, found %s", p.tok)
		}
		v, err := types.ParseDate(p.tok.Text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: v}, nil
	case p.isKeyword("INTERVAL"):
		return p.parseInterval()
	case p.isKeyword("CASE"):
		return p.parseCase()
	case p.isKeyword("CAST"):
		return p.parseCast()
	case p.isKeyword("EXTRACT"):
		return p.parseExtract()
	case p.isKeyword("SUBSTRING"):
		return p.parseSubstring()
	case p.isKeyword("EXISTS"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &SubqueryRef{Kind: SubExists, Query: q}, nil
	case p.isOp("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKeyword("SELECT") {
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &SubqueryRef{Kind: SubScalar, Query: q}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.Kind == TokIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isOp("(") {
			return p.parseFuncCall(name)
		}
		if p.isOp(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	default:
		return nil, p.errorf("expected expression, found %s", p.tok)
	}
}

func (p *Parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fe := &FuncExpr{Name: strings.ToLower(name)}
	if p.isOp("*") {
		fe.Star = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fe, nil
	}
	if p.isOp(")") {
		return fe, p.advance()
	}
	if p.isKeyword("DISTINCT") {
		fe.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fe.Args = append(fe.Args, e)
		if !p.isOp(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fe, nil
}

// parseInterval parses INTERVAL '<n>' YEAR|MONTH|DAY (the TPC-H form).
func (p *Parser) parseInterval() (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokString {
		return nil, p.errorf("expected string after INTERVAL, found %s", p.tok)
	}
	numText := strings.TrimSpace(p.tok.Text)
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(numText)
	if err != nil {
		// Allow forms like '3 months' inside the string.
		fields := strings.Fields(numText)
		if len(fields) == 2 {
			if m, err2 := strconv.Atoi(fields[0]); err2 == nil {
				v, err3 := intervalFromUnit(m, fields[1])
				if err3 != nil {
					return nil, p.errorf("%v", err3)
				}
				return &Lit{Val: v}, nil
			}
		}
		return nil, p.errorf("invalid interval literal %q", numText)
	}
	unit := p.tok.Text
	if p.tok.Kind != TokKeyword && p.tok.Kind != TokIdent {
		return nil, p.errorf("expected interval unit, found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	v, err := intervalFromUnit(n, unit)
	if err != nil {
		return nil, p.errorf("%v", err)
	}
	return &Lit{Val: v}, nil
}

func intervalFromUnit(n int, unit string) (types.Value, error) {
	switch strings.ToUpper(strings.TrimSuffix(strings.ToUpper(unit), "S")) {
	case "YEAR":
		return types.NewInterval(int32(12*n), 0), nil
	case "MONTH":
		return types.NewInterval(int32(n), 0), nil
	case "DAY":
		return types.NewInterval(0, int32(n)), nil
	default:
		return types.NullValue, fmt.Errorf("unsupported interval unit %q", unit)
	}
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	if !p.isKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.isKeyword("WHEN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.isKeyword("ELSE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *Parser) parseCast() (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	typName := p.tok.Text
	if p.tok.Kind != TokIdent && p.tok.Kind != TokKeyword {
		return nil, p.errorf("expected type name, found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	kind, ok := TypeFromName(typName)
	if !ok {
		return nil, p.errorf("unknown type %q", typName)
	}
	if p.isOp("(") {
		if err := p.skipParens(); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CastExpr{Expr: e, Type: kind}, nil
}

func (p *Parser) parseExtract() (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	field := p.tok.Text
	if !p.isKeyword("YEAR") && !p.isKeyword("MONTH") && !p.isKeyword("DAY") {
		return nil, p.errorf("expected YEAR, MONTH or DAY in EXTRACT, found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &ExtractExpr{Field: field, Expr: e}, nil
}

// parseSubstring parses SUBSTRING(x FROM a FOR b) and SUBSTRING(x, a, b),
// lowering both to a substring function call.
func (p *Parser) parseSubstring() (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	fe := &FuncExpr{Name: "substring", Args: []Expr{x}}
	switch {
	case p.isKeyword("FROM"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fe.Args = append(fe.Args, a)
		if p.isKeyword("FOR") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			b, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fe.Args = append(fe.Args, b)
		}
	case p.isOp(","):
		for p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fe.Args = append(fe.Args, a)
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fe, nil
}
