// Package sql implements the SQL dialect of the Perm engine: a lexer, an
// abstract syntax tree and a recursive-descent parser.
//
// The dialect is the SQL subset needed by the paper's workloads — SELECT
// with joins (including explicit OUTER joins), WHERE, GROUP BY, HAVING,
// ORDER BY, LIMIT, set operations (UNION/INTERSECT/EXCEPT [ALL]),
// uncorrelated expression subqueries (IN, EXISTS, scalar, ANY/ALL),
// aggregates (incl. DISTINCT), CASE, LIKE, BETWEEN, EXTRACT, date and
// interval literals — plus DDL/DML (CREATE TABLE, CREATE VIEW, DROP,
// INSERT, SELECT INTO) and the Perm SQL-PLE extensions of the paper:
//
//	SELECT PROVENANCE ...                   -- §IV-A2
//	FROM item PROVENANCE (attr, ...)        -- §IV-A3 external/incremental
//	FROM item BASERELATION                  -- §IV-A4 limited scope
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp    // operators and punctuation
	TokParam // $n positional parameter (reserved; unused by the engine)
)

// Token is a lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased, identifiers lower-cased
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords is the reserved-word set. Identifiers matching these (case
// insensitively) lex as TokKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"IN": true, "EXISTS": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"DISTINCT": true, "ALL": true, "ANY": true, "SOME": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "CAST": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true, "ON": true, "USING": true, "NATURAL": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true,
	"CREATE": true, "TABLE": true, "VIEW": true, "DROP": true, "INSERT": true,
	"INTO": true, "VALUES": true, "ASC": true, "DESC": true,
	"DATE": true, "INTERVAL": true, "EXTRACT": true, "YEAR": true,
	"MONTH": true, "DAY": true, "SUBSTRING": true, "FOR": true,
	"PROVENANCE": true, "BASERELATION": true,
	"PRIMARY": true, "KEY": true, "IF": true,
	"EXPLAIN": true, "REWRITE": true, "ANALYZE": true, "DELETE": true, "UPDATE": true, "SET": true,
	"CANCEL": true,
	"NULLS":  true, "FIRST": true, "LAST": true,
}

// Lexer turns SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Error is a syntax error with position information.
type Error struct {
	Pos int
	Msg string
	Src string
}

func (e *Error) Error() string {
	line, col := 1, 1
	for i := 0; i < e.Pos && i < len(e.Src); i++ {
		if e.Src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("syntax error at line %d column %d: %s", line, col, e.Msg)
}

func (l *Lexer) errorf(pos int, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Src: l.src}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		return l.lexIdent(start), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			return l.lexNumber(start)
		}
		l.pos++
		return Token{Kind: TokOp, Text: ".", Pos: start}, nil
	case c == '\'':
		return l.lexString(start)
	case c == '"':
		return l.lexQuotedIdent(start)
	default:
		return l.lexOp(start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *Lexer) lexIdent(start int) Token {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: start}
	}
	return Token{Kind: TokIdent, Text: strings.ToLower(word), Pos: start}
}

func (l *Lexer) lexQuotedIdent(start int) (Token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				sb.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokIdent, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, l.errorf(start, "unterminated quoted identifier")
}

func (l *Lexer) lexNumber(start int) (Token, error) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
		}
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, l.errorf(start, "unterminated string literal")
}

// multi-character operators, longest first.
var multiOps = []string{"<>", "<=", ">=", "!=", "||"}

func (l *Lexer) lexOp(start int) (Token, error) {
	rest := l.src[l.pos:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			l.pos += len(op)
			text := op
			if text == "!=" {
				text = "<>"
			}
			return Token{Kind: TokOp, Text: text, Pos: start}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '<', '>', '=', ';', '.':
		l.pos++
		return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
	}
	return Token{}, l.errorf(start, "unexpected character %q", c)
}

// Tokenize lexes the whole input (used by tests).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
