package sql

import (
	"strings"

	"perm/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed scalar expression.
type Expr interface{ expr() }

// ---------------------------------------------------------------------------
// Statements

// SelectStmt is a SELECT query. Either the set-operation fields (Op,
// Left, Right) are populated, or the plain select fields are.
type SelectStmt struct {
	// Set operation form: Left Op Right. When Op is SetNone the plain
	// select fields below apply.
	Op    SetOpKind
	All   bool // UNION ALL / INTERSECT ALL / EXCEPT ALL
	Left  *SelectStmt
	Right *SelectStmt

	// Plain select form.
	Provenance bool // SELECT PROVENANCE — the SQL-PLE keyword of §IV-A2
	Distinct   bool
	Targets    []SelectTarget
	From       []TableExpr
	Where      Expr
	GroupBy    []Expr
	Having     Expr

	// These apply to the whole statement (outermost set operation too).
	OrderBy []OrderItem
	Limit   Expr // nil when absent
	Offset  Expr
	Into    string // SELECT ... INTO <table>: materialize result
}

func (*SelectStmt) stmt() {}

// SetOpKind enumerates set operations connecting two selects.
type SetOpKind uint8

// Set operation kinds.
const (
	SetNone SetOpKind = iota
	SetUnion
	SetIntersect
	SetExcept
)

func (k SetOpKind) String() string {
	switch k {
	case SetUnion:
		return "UNION"
	case SetIntersect:
		return "INTERSECT"
	case SetExcept:
		return "EXCEPT"
	default:
		return "NONE"
	}
}

// SelectTarget is one item of the select list. A star target has Star set
// (optionally qualified by a table alias).
type SelectTarget struct {
	Expr  Expr
	Alias string
	Star  bool
	Table string // for "t.*"
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableExpr is an item in the FROM clause.
type TableExpr interface{ tableExpr() }

// TableName references a base table or view, with the SQL-PLE annotations
// of §IV-A3/4.
type TableName struct {
	Name  string
	Alias string
	// ProvAttrs, when non-nil, is the PROVENANCE (attr, ...) annotation:
	// the listed attributes carry external provenance and the rewriter
	// must treat this item as already rewritten.
	ProvAttrs []string
	// BaseRelation marks the item to be treated as a base relation by the
	// rewriter (BASERELATION keyword), limiting provenance scope.
	BaseRelation bool
}

func (*TableName) tableExpr() {}

// SubqueryExpr is a derived table in FROM, with the same SQL-PLE
// annotations as TableName.
type SubqueryExpr struct {
	Query        *SelectStmt
	Alias        string
	ProvAttrs    []string
	BaseRelation bool
}

func (*SubqueryExpr) tableExpr() {}

// JoinKind enumerates join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// JoinExpr is an explicit join in the FROM clause.
type JoinExpr struct {
	Kind  JoinKind
	Left  TableExpr
	Right TableExpr
	On    Expr     // nil for CROSS JOIN
	Using []string // USING (col, ...) alternative to ON
}

func (*JoinExpr) tableExpr() {}

// CreateTableStmt is CREATE TABLE with column definitions.
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Cols        []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type types.Kind
}

// CreateViewStmt is CREATE VIEW name AS select.
type CreateViewStmt struct {
	Name      string
	OrReplace bool
	Query     *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// DropStmt drops a table or view.
type DropStmt struct {
	View     bool
	Name     string
	IfExists bool
}

func (*DropStmt) stmt() {}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...), (...) | select.
type InsertStmt struct {
	Table  string
	Cols   []string
	Values [][]Expr    // literal rows, when Query is nil
	Query  *SelectStmt // INSERT ... SELECT
}

func (*InsertStmt) stmt() {}

// DeleteStmt is DELETE FROM name [WHERE cond].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// ExplainStmt is EXPLAIN [REWRITE|ANALYZE] select: REWRITE shows the
// provenance-rewritten query text, ANALYZE executes the query and shows
// the physical plan annotated with per-operator runtime statistics, and
// plain EXPLAIN shows the physical plan without executing.
type ExplainStmt struct {
	Rewrite bool
	Analyze bool
	Query   *SelectStmt
}

func (*ExplainStmt) stmt() {}

// CancelStmt is CANCEL <query_id>: request cooperative cancellation of
// an in-flight query (any session's) by the ID shown in
// perm_stat_activity. The ID may be written bare (CANCEL q12) or as a
// string literal (CANCEL 'q12').
type CancelStmt struct {
	ID string
}

func (*CancelStmt) stmt() {}

// ---------------------------------------------------------------------------
// Expressions

// ColumnRef references a column, optionally qualified by table alias.
type ColumnRef struct {
	Table  string // "" when unqualified
	Column string
}

func (*ColumnRef) expr() {}

// Lit is a literal value.
type Lit struct {
	Val types.Value
}

func (*Lit) expr() {}

// BinExpr is a binary operation. Op is one of: + - * / % = <> < <= > >=
// AND OR LIKE || .
type BinExpr struct {
	Op    string
	Left  Expr
	Right Expr
}

func (*BinExpr) expr() {}

// UnaryExpr is NOT x, -x, or +x.
type UnaryExpr struct {
	Op   string // "NOT", "-", "+"
	Expr Expr
}

func (*UnaryExpr) expr() {}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

func (*IsNullExpr) expr() {}

// DistinctExpr is x IS [NOT] DISTINCT FROM y (null-safe comparison).
type DistinctExpr struct {
	Left  Expr
	Right Expr
	Not   bool
}

func (*DistinctExpr) expr() {}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	Expr Expr
	Lo   Expr
	Hi   Expr
	Not  bool
}

func (*BetweenExpr) expr() {}

// InListExpr is x [NOT] IN (v1, v2, ...).
type InListExpr struct {
	Expr Expr
	List []Expr
	Not  bool
}

func (*InListExpr) expr() {}

// FuncExpr is a function call, including aggregates. Star marks COUNT(*).
type FuncExpr struct {
	Name     string
	Args     []Expr
	Distinct bool
	Star     bool
}

func (*FuncExpr) expr() {}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

func (*CaseExpr) expr() {}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	Expr Expr
	Type types.Kind
}

func (*CastExpr) expr() {}

// ExtractExpr is EXTRACT(field FROM x) with field YEAR/MONTH/DAY.
type ExtractExpr struct {
	Field string
	Expr  Expr
}

func (*ExtractExpr) expr() {}

// SubLinkKind enumerates expression-subquery forms (§IV-E "sublinks").
type SubLinkKind uint8

// Sublink kinds.
const (
	SubScalar SubLinkKind = iota // (SELECT ...) used as a value
	SubExists                    // EXISTS (SELECT ...)
	SubIn                        // x IN (SELECT ...)
	SubAny                       // x op ANY (SELECT ...)
	SubAll                       // x op ALL (SELECT ...)
)

// SubqueryRef is a sublink: a subquery used inside an expression.
type SubqueryRef struct {
	Kind  SubLinkKind
	Test  Expr   // left operand for IN/ANY/ALL; nil otherwise
	Op    string // comparison operator for ANY/ALL ("=" for IN)
	Not   bool   // NOT IN / NOT EXISTS
	Query *SelectStmt
}

func (*SubqueryRef) expr() {}

// TypeFromName maps a SQL type name to a kind.
func TypeFromName(name string) (types.Kind, bool) {
	switch strings.ToLower(name) {
	case "int", "integer", "bigint", "smallint", "int4", "int8":
		return types.KindInt, true
	case "float", "double", "real", "decimal", "numeric", "float8", "float4":
		return types.KindFloat, true
	case "text", "varchar", "char", "character", "string":
		return types.KindString, true
	case "bool", "boolean":
		return types.KindBool, true
	case "date":
		return types.KindDate, true
	case "interval":
		return types.KindInterval, true
	default:
		return types.KindNull, false
	}
}
