package sql

import (
	"strings"
	"testing"

	"perm/internal/types"
)

func TestTokenize(t *testing.T) {
	toks, err := Tokenize(`SELECT a, "Quoted Id" FROM t WHERE x <> 'it''s' -- comment
		AND y >= 1.5e2 /* block */ ;`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "Quoted Id", "FROM", "t", "WHERE",
		"x", "<>", "it's", "AND", "y", ">=", "1.5e2", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[3] != TokIdent ||
		kinds[9] != TokString || kinds[13] != TokNumber {
		t.Errorf("token kinds wrong: %v", kinds)
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "a ? b"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestLexerNormalizesNotEqual(t *testing.T) {
	toks, err := Tokenize("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "<>" {
		t.Errorf("!= should normalize to <>, got %q", toks[1].Text)
	}
}

func parseSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", src, stmt)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := parseSelect(t, "SELECT a, b AS bee, t.c FROM t WHERE a > 1")
	if len(sel.Targets) != 3 {
		t.Fatalf("targets = %d", len(sel.Targets))
	}
	if sel.Targets[1].Alias != "bee" {
		t.Errorf("alias = %q", sel.Targets[1].Alias)
	}
	cr, ok := sel.Targets[2].Expr.(*ColumnRef)
	if !ok || cr.Table != "t" || cr.Column != "c" {
		t.Errorf("qualified ref = %#v", sel.Targets[2].Expr)
	}
	if sel.Where == nil {
		t.Error("where missing")
	}
}

func TestParseProvenanceKeyword(t *testing.T) {
	sel := parseSelect(t, "SELECT PROVENANCE a FROM t")
	if !sel.Provenance {
		t.Error("PROVENANCE flag not set")
	}
	sel = parseSelect(t, "SELECT a FROM t")
	if sel.Provenance {
		t.Error("PROVENANCE flag set spuriously")
	}
}

func TestParseFromAnnotations(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM v PROVENANCE (pid, pprice)")
	tn := sel.From[0].(*TableName)
	if len(tn.ProvAttrs) != 2 || tn.ProvAttrs[0] != "pid" || tn.ProvAttrs[1] != "pprice" {
		t.Errorf("ProvAttrs = %v", tn.ProvAttrs)
	}

	sel = parseSelect(t, "SELECT a FROM (SELECT sum(x) AS a FROM s) BASERELATION AS sub")
	sub := sel.From[0].(*SubqueryExpr)
	if !sub.BaseRelation || sub.Alias != "sub" {
		t.Errorf("BASERELATION subquery = %+v", sub)
	}

	// Paper's §IV-A3 placement: annotation after the alias.
	sel = parseSelect(t, "SELECT a FROM totalitemprice PROVENANCE (pid, pprice)")
	tn = sel.From[0].(*TableName)
	if tn.Name != "totalitemprice" || len(tn.ProvAttrs) != 2 {
		t.Errorf("annotated table = %+v", tn)
	}
}

func TestParseJoins(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y
		JOIN c USING (z) CROSS JOIN d`)
	j1, ok := sel.From[0].(*JoinExpr)
	if !ok || j1.Kind != JoinCross {
		t.Fatalf("outermost join = %#v", sel.From[0])
	}
	j2 := j1.Left.(*JoinExpr)
	if j2.Kind != JoinInner || len(j2.Using) != 1 || j2.Using[0] != "z" {
		t.Errorf("USING join = %+v", j2)
	}
	j3 := j2.Left.(*JoinExpr)
	if j3.Kind != JoinLeft || j3.On == nil {
		t.Errorf("left join = %+v", j3)
	}
}

func TestParseSetOps(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t UNION ALL SELECT b FROM s INTERSECT SELECT c FROM u")
	// INTERSECT binds tighter: t UNION ALL (s INTERSECT u).
	if sel.Op != SetUnion || !sel.All {
		t.Fatalf("top op = %v all=%v", sel.Op, sel.All)
	}
	right := sel.Right
	if right.Op != SetIntersect {
		t.Errorf("right op = %v, want INTERSECT", right.Op)
	}

	sel = parseSelect(t, "(SELECT a FROM t EXCEPT SELECT b FROM s) UNION SELECT c FROM u")
	if sel.Op != SetUnion || sel.Left.Op != SetExcept {
		t.Errorf("bracketed tree wrong: %v / %v", sel.Op, sel.Left.Op)
	}
}

func TestParseOrderLimit(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t ORDER BY a DESC, 2 LIMIT 10 OFFSET 5")
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("limit/offset missing")
	}
}

func TestParseGroupByHaving(t *testing.T) {
	sel := parseSelect(t, "SELECT a, sum(b) FROM t GROUP BY a HAVING sum(b) > 10")
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Errorf("group/having = %v / %v", sel.GroupBy, sel.Having)
	}
	fe := sel.Targets[1].Expr.(*FuncExpr)
	if fe.Name != "sum" {
		t.Errorf("agg name = %q", fe.Name)
	}
}

func TestParseExpressions(t *testing.T) {
	sel := parseSelect(t, `SELECT
		CASE WHEN a = 1 THEN 'one' ELSE 'many' END,
		CASE a WHEN 1 THEN 'x' END,
		a BETWEEN 1 AND 10,
		b NOT LIKE 'x%',
		c IN (1, 2, 3),
		d NOT IN (SELECT e FROM s),
		EXISTS (SELECT 1 FROM s),
		f IS NOT NULL,
		g IS DISTINCT FROM h,
		CAST(a AS float),
		EXTRACT(YEAR FROM d),
		substring(s FROM 1 FOR 2),
		-a + 2 * 3
	FROM t`)
	if len(sel.Targets) != 13 {
		t.Fatalf("targets = %d", len(sel.Targets))
	}
	if _, ok := sel.Targets[0].Expr.(*CaseExpr); !ok {
		t.Error("searched CASE not parsed")
	}
	if ce, ok := sel.Targets[1].Expr.(*CaseExpr); !ok || ce.Operand == nil {
		t.Error("operand CASE not parsed")
	}
	if be, ok := sel.Targets[2].Expr.(*BetweenExpr); !ok || be.Not {
		t.Error("BETWEEN not parsed")
	}
	if ue, ok := sel.Targets[3].Expr.(*UnaryExpr); !ok || ue.Op != "NOT" {
		t.Error("NOT LIKE not parsed as negation")
	}
	if il, ok := sel.Targets[4].Expr.(*InListExpr); !ok || len(il.List) != 3 {
		t.Error("IN list not parsed")
	}
	if sq, ok := sel.Targets[5].Expr.(*SubqueryRef); !ok || !sq.Not || sq.Kind != SubIn {
		t.Error("NOT IN subquery not parsed")
	}
	if sq, ok := sel.Targets[6].Expr.(*SubqueryRef); !ok || sq.Kind != SubExists {
		t.Error("EXISTS not parsed")
	}
	if in, ok := sel.Targets[7].Expr.(*IsNullExpr); !ok || !in.Not {
		t.Error("IS NOT NULL not parsed")
	}
	if df, ok := sel.Targets[8].Expr.(*DistinctExpr); !ok || df.Not {
		t.Error("IS DISTINCT FROM not parsed")
	}
	if ca, ok := sel.Targets[9].Expr.(*CastExpr); !ok || ca.Type != types.KindFloat {
		t.Error("CAST not parsed")
	}
	if ex, ok := sel.Targets[10].Expr.(*ExtractExpr); !ok || ex.Field != "YEAR" {
		t.Error("EXTRACT not parsed")
	}
	if fe, ok := sel.Targets[11].Expr.(*FuncExpr); !ok || fe.Name != "substring" || len(fe.Args) != 3 {
		t.Error("SUBSTRING not parsed")
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT a + b * c FROM t")
	be := sel.Targets[0].Expr.(*BinExpr)
	if be.Op != "+" {
		t.Fatalf("top op = %q, want +", be.Op)
	}
	if inner, ok := be.Right.(*BinExpr); !ok || inner.Op != "*" {
		t.Error("* must bind tighter than +")
	}

	sel = parseSelect(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or := sel.Where.(*BinExpr)
	if or.Op != "OR" {
		t.Fatalf("top where op = %q, want OR", or.Op)
	}
	and, ok := or.Right.(*BinExpr)
	if !ok || and.Op != "AND" {
		t.Error("AND must bind tighter than OR")
	}

	sel = parseSelect(t, "SELECT * FROM t WHERE NOT a = 1 AND b = 2")
	topAnd := sel.Where.(*BinExpr)
	if topAnd.Op != "AND" {
		t.Fatalf("NOT must bind tighter than AND; top = %q", topAnd.Op)
	}
	if _, ok := topAnd.Left.(*UnaryExpr); !ok {
		t.Error("left side must be NOT(...)")
	}
}

func TestParseLiterals(t *testing.T) {
	sel := parseSelect(t, `SELECT 1, -2, 2.5, 'str', NULL, TRUE, FALSE,
		date '1995-06-17', interval '3' month, interval '90' day FROM t`)
	lits := make([]types.Value, 0)
	for _, tg := range sel.Targets {
		if l, ok := tg.Expr.(*Lit); ok {
			lits = append(lits, l.Val)
		}
	}
	if len(lits) != 10 {
		t.Fatalf("got %d literals", len(lits))
	}
	if lits[0].I != 1 || lits[1].I != -2 || lits[2].F != 2.5 || lits[3].S != "str" {
		t.Error("scalar literals wrong")
	}
	if !lits[4].Null || !lits[5].B || lits[6].B {
		t.Error("null/bool literals wrong")
	}
	if lits[7].K != types.KindDate || lits[7].String() != "1995-06-17" {
		t.Errorf("date literal = %v", lits[7])
	}
	mo, _ := lits[8].IntervalParts()
	if mo != 3 {
		t.Errorf("interval months = %d", mo)
	}
	_, dy := lits[9].IntervalParts()
	if dy != 90 {
		t.Errorf("interval days = %d", dy)
	}
}

func TestParseDDL(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE t (a int NOT NULL, b varchar(10), c decimal(12,2), PRIMARY KEY (a))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if len(ct.Cols) != 3 {
		t.Fatalf("cols = %d", len(ct.Cols))
	}
	if ct.Cols[0].Type != types.KindInt || ct.Cols[1].Type != types.KindString ||
		ct.Cols[2].Type != types.KindFloat {
		t.Errorf("column types = %+v", ct.Cols)
	}

	stmt, err = Parse("CREATE TABLE IF NOT EXISTS t (a int)")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.(*CreateTableStmt).IfNotExists {
		t.Error("IF NOT EXISTS not parsed")
	}

	stmt, err = Parse("CREATE VIEW v AS SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*CreateViewStmt).Name != "v" {
		t.Error("view name wrong")
	}

	stmt, err = Parse("DROP VIEW IF EXISTS v")
	if err != nil {
		t.Fatal(err)
	}
	ds := stmt.(*DropStmt)
	if !ds.View || !ds.IfExists {
		t.Errorf("drop = %+v", ds)
	}
}

func TestParseInsertDelete(t *testing.T) {
	stmt, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if len(ins.Cols) != 2 || len(ins.Values) != 2 {
		t.Errorf("insert = %+v", ins)
	}

	stmt, err = Parse("INSERT INTO t SELECT a, b FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*InsertStmt).Query == nil {
		t.Error("INSERT ... SELECT not parsed")
	}

	stmt, err = Parse("DELETE FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DeleteStmt).Where == nil {
		t.Error("DELETE WHERE not parsed")
	}
}

func TestParseSelectInto(t *testing.T) {
	sel := parseSelect(t, "SELECT a INTO saved FROM t")
	if sel.Into != "saved" {
		t.Errorf("INTO = %q", sel.Into)
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN REWRITE SELECT PROVENANCE a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ex := stmt.(*ExplainStmt)
	if !ex.Rewrite || !ex.Query.Provenance {
		t.Errorf("explain = %+v", ex)
	}
}

func TestParseAllMultiple(t *testing.T) {
	stmts, err := ParseAll("CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT a FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t JOIN s",    // missing ON
		"SELECT a b c FROM t",       // junk after alias
		"CREATE TABLE t",            // missing columns
		"CREATE TABLE t (a unkown)", // bad type
		"INSERT t VALUES (1)",       // missing INTO
		"SELECT CASE END FROM t",    // CASE without WHEN
		"SELECT a FROM t ORDER",     // incomplete
		"SELECT (SELECT a FROM s FROM t",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t WHERE ???")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should report line 2: %v", err)
	}
}

func TestParseQuantifiedComparison(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t WHERE a > ANY (SELECT b FROM s) AND a <= ALL (SELECT c FROM u)")
	and := sel.Where.(*BinExpr)
	anyRef, ok := and.Left.(*SubqueryRef)
	if !ok || anyRef.Kind != SubAny || anyRef.Op != ">" {
		t.Errorf("ANY = %#v", and.Left)
	}
	allRef, ok := and.Right.(*SubqueryRef)
	if !ok || allRef.Kind != SubAll || allRef.Op != "<=" {
		t.Errorf("ALL = %#v", and.Right)
	}
}

func TestParseScalarSubquery(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t WHERE a > (SELECT max(b) FROM s)")
	cmp := sel.Where.(*BinExpr)
	if sq, ok := cmp.Right.(*SubqueryRef); !ok || sq.Kind != SubScalar {
		t.Errorf("scalar subquery = %#v", cmp.Right)
	}
}

func TestTypeFromName(t *testing.T) {
	cases := map[string]types.Kind{
		"int": types.KindInt, "INTEGER": types.KindInt, "bigint": types.KindInt,
		"float": types.KindFloat, "decimal": types.KindFloat, "numeric": types.KindFloat,
		"text": types.KindString, "varchar": types.KindString,
		"bool": types.KindBool, "date": types.KindDate,
	}
	for name, want := range cases {
		got, ok := TypeFromName(name)
		if !ok || got != want {
			t.Errorf("TypeFromName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := TypeFromName("blob"); ok {
		t.Error("blob should be unknown")
	}
}
