package spill

import (
	"os"
	"path/filepath"
	"testing"

	"perm/internal/types"
	"perm/internal/vector"
)

// buildCols assembles a test batch covering every vectorizable kind,
// with NULLs sprinkled in.
func buildCols(n int) []*vector.Vec {
	ints := vector.NewVec(types.KindInt, n)
	floats := vector.NewVec(types.KindFloat, n)
	bools := vector.NewVec(types.KindBool, n)
	strs := vector.NewVec(types.KindString, n)
	dates := vector.NewVec(types.KindDate, n)
	for i := 0; i < n; i++ {
		ints.I[i] = int64(i * 3)
		floats.F[i] = float64(i) * 0.5
		bools.B[i] = i%2 == 0
		strs.S[i] = string(rune('a'+i%26)) + "xyz"
		dates.I[i] = int64(9000 + i)
		if i%7 == 3 {
			ints.Nulls.Set(i)
			strs.Nulls.Set(i)
		}
	}
	return []*vector.Vec{ints, floats, bools, strs, dates}
}

func TestRunRoundTrip(t *testing.T) {
	run, err := NewRun(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	sizes := []int{1, 64, 100, 1024}
	batches := make([][]*vector.Vec, len(sizes))
	for bi, n := range sizes {
		batches[bi] = buildCols(n)
		if err := run.WriteCols(batches[bi], n); err != nil {
			t.Fatal(err)
		}
	}
	if run.Bytes() <= 0 {
		t.Fatal("run reported zero bytes after writes")
	}
	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	for bi, n := range sizes {
		cols, got, err := run.ReadCols()
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Fatalf("batch %d: %d rows, want %d", bi, got, n)
		}
		for c, v := range cols {
			want := batches[bi][c]
			if v.Kind != want.Kind {
				t.Fatalf("batch %d col %d: kind %v, want %v", bi, c, v.Kind, want.Kind)
			}
			for i := 0; i < n; i++ {
				a, b := v.Value(i), want.Value(i)
				if a.String() != b.String() || a.Null != b.Null {
					t.Fatalf("batch %d col %d row %d: %v != %v", bi, c, i, a, b)
				}
			}
		}
	}
	if cols, n, err := run.ReadCols(); err != nil || cols != nil || n != 0 {
		t.Fatalf("expected clean EOF, got %v rows=%d err=%v", cols, n, err)
	}
}

func TestRowRunRoundTrip(t *testing.T) {
	run, err := NewRowRun(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	rows := []types.Row{
		{types.NewInt(1), types.NewString("hello"), types.NewBool(true)},
		{types.NewNull(types.KindInt), types.NewString(""), types.NewFloat(-2.5)},
		{types.NewDate(12345), types.NewInterval(2, 10), types.NullValue},
		{},
	}
	for _, r := range rows {
		if err := run.WriteRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	for ri, want := range rows {
		got, err := run.ReadRow()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("row %d: %d cols, want %d", ri, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d col %d: %#v != %#v", ri, i, got[i], want[i])
			}
		}
	}
	if got, err := run.ReadRow(); err != nil || got != nil {
		t.Fatalf("expected clean EOF, got %v err=%v", got, err)
	}
}

func TestTempFileHygiene(t *testing.T) {
	dir := t.TempDir()
	run, err := NewRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.WriteCols(buildCols(10), 10); err != nil {
		t.Fatal(err)
	}
	// The file is unlinked at creation: the directory must already be
	// empty while the run is still live.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir holds %d entries while run is open (early unlink failed)", len(ents))
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCleanupSweepsLeftovers(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{FilePrefix + "1234", FilePrefix + "abcd"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "keep.txt"), []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if got := Cleanup(dir); got != 2 {
		t.Fatalf("Cleanup removed %d files, want 2", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 || ents[0].Name() != "keep.txt" {
		t.Fatalf("unexpected leftovers after Cleanup: %v", ents)
	}
}
