// Package spill implements the temporary-file substrate of the Perm
// engine's spill-to-disk execution paths: sequential "runs" of encoded
// column batches (reusing the internal/vector layouts) for the
// vectorized operators, and a row codec for the row engine's external
// sort.
//
// Temp-file hygiene: every run is created with os.CreateTemp under a
// configurable directory and unlinked immediately after creation, so
// the storage is reclaimed by the OS the moment the file descriptor
// closes — including on a crash. On platforms (or filesystems) where
// the early unlink fails, the file is removed on Close instead, and
// Cleanup sweeps leftovers with the well-known name prefix on server
// start.
package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"perm/internal/fault"
	"perm/internal/mem"
	"perm/internal/types"
	"perm/internal/vector"
)

func math64(f float64) uint64   { return math.Float64bits(f) }
func unmath64(u uint64) float64 { return math.Float64frombits(u) }

// DownHeap restores the min-heap property of h from position at, with
// less ordering the stored values. Shared by the k-way run mergers of
// the external sorts and the sequence merges.
func DownHeap(h []int, at int, less func(a, b int) bool) {
	n := len(h)
	for {
		l, r := 2*at+1, 2*at+2
		least := at
		if l < n && less(h[l], h[least]) {
			least = l
		}
		if r < n && less(h[r], h[least]) {
			least = r
		}
		if least == at {
			return
		}
		h[at], h[least] = h[least], h[at]
		at = least
	}
}

// Heapify builds the heap bottom-up.
func Heapify(h []int, less func(a, b int) bool) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		DownHeap(h, i, less)
	}
}

// FilePrefix names every spill temp file, so crash leftovers are
// identifiable (and sweepable) without touching unrelated files.
const FilePrefix = "perm-spill-"

// ResolveDir picks the spill directory: the explicit configuration if
// non-empty, else $PERM_SPILL_DIR, else the system temp directory.
func ResolveDir(dir string) string {
	if dir == "" {
		dir = os.Getenv("PERM_SPILL_DIR")
	}
	if dir == "" {
		dir = os.TempDir()
	}
	return dir
}

// Cleanup removes leftover spill files (from a crashed process whose
// early unlink did not happen) under dir. It returns the number of
// files removed; missing directories are not an error.
func Cleanup(dir string) int {
	dir = ResolveDir(dir)
	matches, err := filepath.Glob(filepath.Join(dir, FilePrefix+"*"))
	if err != nil {
		return 0
	}
	removed := 0
	for _, m := range matches {
		if os.Remove(m) == nil {
			removed++
		}
	}
	return removed
}

// Resources bundles what a spill-capable operator needs: the memory
// reservation it charges (nil = unlimited, never spills) and the
// directory its runs are created under. The zero value disables
// spilling.
type Resources struct {
	Res *mem.Reservation
	Dir string
}

// Enabled reports whether the operator can be denied memory — and must
// therefore be prepared to spill.
func (r Resources) Enabled() bool { return r.Res.Limited() }

// ---------------------------------------------------------------------------
// Shared temp-file plumbing

type tempFile struct {
	f *os.File
	// lateName holds the path when the early unlink failed; Close
	// removes it then.
	lateName string
	w        *bufio.Writer
	r        *bufio.Reader
	bytes    int64
	finished bool
	closed   bool
}

func newTempFile(dir string) (*tempFile, error) {
	if err := fault.Failure(fault.PointSpillWrite); err != nil {
		return nil, fmt.Errorf("spill: create temp file: %w", err)
	}
	dir = ResolveDir(dir)
	f, err := os.CreateTemp(dir, FilePrefix+"*")
	if err != nil {
		return nil, fmt.Errorf("spill: create temp file: %w", err)
	}
	t := &tempFile{f: f, w: bufio.NewWriterSize(f, 1<<16)}
	if err := os.Remove(f.Name()); err != nil {
		t.lateName = f.Name()
	}
	return t, nil
}

func (t *tempFile) write(p []byte) error {
	// The fault tap simulates a mid-run write failure (disk full): the
	// bytes are reported unwritten, exactly as a short write would.
	if err := fault.Failure(fault.PointSpillWrite); err != nil {
		return fmt.Errorf("spill: write: %w", err)
	}
	n, err := t.w.Write(p)
	t.bytes += int64(n)
	return err
}

// finish flushes the write side and positions the file for reading.
func (t *tempFile) finish() error {
	if t.finished {
		return nil
	}
	t.finished = true
	if err := fault.Failure(fault.PointSpillWrite); err != nil {
		return fmt.Errorf("spill: flush: %w", err)
	}
	if err := t.w.Flush(); err != nil {
		return err
	}
	if _, err := t.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	t.r = bufio.NewReaderSize(t.f, 1<<16)
	return nil
}

func (t *tempFile) close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	err := t.f.Close()
	if t.lateName != "" {
		os.Remove(t.lateName) //nolint:errcheck — best-effort late unlink
	}
	return err
}

// ---------------------------------------------------------------------------
// Columnar run codec
//
// A Run is a sequence of batches. Each batch is encoded as:
//
//	u32 rows, u16 cols
//	per column: u8 kind, u8 hasNulls,
//	            [hasNulls: ceil(rows/64) × u64 null words]
//	            payload (int/date: rows×i64, float: rows×f64,
//	                     bool: rows bytes, string: per row u32 len + bytes)

// Run is one spill run of encoded column batches: written sequentially,
// finished, then read back sequentially exactly once.
type Run struct {
	t     *tempFile
	rows  int64
	buf   []byte
	kinds []types.Kind
}

// NewRun creates a run file under dir.
func NewRun(dir string) (*Run, error) {
	t, err := newTempFile(dir)
	if err != nil {
		return nil, err
	}
	return &Run{t: t}, nil
}

// Rows returns the number of rows written so far.
func (r *Run) Rows() int64 { return r.rows }

// Bytes returns the encoded size written so far.
func (r *Run) Bytes() int64 { return r.t.bytes }

func (r *Run) u32(v uint32) {
	r.buf = binary.LittleEndian.AppendUint32(r.buf, v)
}

func (r *Run) u64(v uint64) {
	r.buf = binary.LittleEndian.AppendUint64(r.buf, v)
}

// WriteCols appends one batch of n dense rows (no selection vectors; the
// caller gathers live lanes first). Column kinds must be consistent
// across every batch of the run.
func (r *Run) WriteCols(cols []*vector.Vec, n int) error {
	if n == 0 {
		return nil
	}
	r.rows += int64(n)
	r.buf = r.buf[:0]
	r.u32(uint32(n))
	r.buf = binary.LittleEndian.AppendUint16(r.buf, uint16(len(cols)))
	words := (n + 63) / 64
	for _, c := range cols {
		r.buf = append(r.buf, byte(c.Kind))
		hasNulls := c.Nulls.AnySet(n)
		if hasNulls {
			r.buf = append(r.buf, 1)
			for w := 0; w < words; w++ {
				if w < len(c.Nulls) {
					r.u64(c.Nulls[w])
				} else {
					r.u64(0)
				}
			}
		} else {
			r.buf = append(r.buf, 0)
		}
		switch c.Kind {
		case types.KindBool:
			for i := 0; i < n; i++ {
				if c.B[i] {
					r.buf = append(r.buf, 1)
				} else {
					r.buf = append(r.buf, 0)
				}
			}
		case types.KindInt, types.KindDate:
			for i := 0; i < n; i++ {
				r.u64(uint64(c.I[i]))
			}
		case types.KindFloat:
			for i := 0; i < n; i++ {
				r.u64(math64(c.F[i]))
			}
		case types.KindString:
			for i := 0; i < n; i++ {
				r.u32(uint32(len(c.S[i])))
				r.buf = append(r.buf, c.S[i]...)
			}
		default:
			return fmt.Errorf("spill: unsupported column kind %v", c.Kind)
		}
	}
	return r.t.write(r.buf)
}

// Finish flushes the run and prepares it for reading.
func (r *Run) Finish() error { return r.t.finish() }

// ReadCols reads the next batch; it returns (nil, 0, nil) at the end of
// the run. Returned vectors are freshly allocated and owned by the
// caller.
func (r *Run) ReadCols() ([]*vector.Vec, int, error) {
	if err := fault.Failure(fault.PointSpillRead); err != nil {
		return nil, 0, fmt.Errorf("spill: read: %w", err)
	}
	var hdr [6]byte
	if _, err := io.ReadFull(r.t.r, hdr[:4]); err != nil {
		if err == io.EOF {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	if _, err := io.ReadFull(r.t.r, hdr[4:6]); err != nil {
		return nil, 0, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:4]))
	ncols := int(binary.LittleEndian.Uint16(hdr[4:6]))
	words := (n + 63) / 64
	cols := make([]*vector.Vec, ncols)
	var kb [8]byte
	for c := 0; c < ncols; c++ {
		if _, err := io.ReadFull(r.t.r, kb[:2]); err != nil {
			return nil, 0, err
		}
		kind := types.Kind(kb[0])
		v := vector.NewVec(kind, n)
		if kb[1] != 0 {
			for w := 0; w < words; w++ {
				if _, err := io.ReadFull(r.t.r, kb[:8]); err != nil {
					return nil, 0, err
				}
				if w < len(v.Nulls) {
					v.Nulls[w] = binary.LittleEndian.Uint64(kb[:8])
				}
			}
		}
		switch kind {
		case types.KindBool:
			for i := 0; i < n; i++ {
				b, err := r.t.r.ReadByte()
				if err != nil {
					return nil, 0, err
				}
				v.B[i] = b != 0
			}
		case types.KindInt, types.KindDate:
			for i := 0; i < n; i++ {
				if _, err := io.ReadFull(r.t.r, kb[:8]); err != nil {
					return nil, 0, err
				}
				v.I[i] = int64(binary.LittleEndian.Uint64(kb[:8]))
			}
		case types.KindFloat:
			for i := 0; i < n; i++ {
				if _, err := io.ReadFull(r.t.r, kb[:8]); err != nil {
					return nil, 0, err
				}
				v.F[i] = unmath64(binary.LittleEndian.Uint64(kb[:8]))
			}
		case types.KindString:
			for i := 0; i < n; i++ {
				if _, err := io.ReadFull(r.t.r, kb[:4]); err != nil {
					return nil, 0, err
				}
				ln := int(binary.LittleEndian.Uint32(kb[:4]))
				sb := make([]byte, ln)
				if _, err := io.ReadFull(r.t.r, sb); err != nil {
					return nil, 0, err
				}
				v.S[i] = string(sb)
			}
		default:
			return nil, 0, fmt.Errorf("spill: corrupt run (kind %d)", kb[0])
		}
		cols[c] = v
	}
	return cols, n, nil
}

// Close releases the run's file (the storage was unlinked at creation).
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	return r.t.close()
}

// ---------------------------------------------------------------------------
// Row run codec (row engine's external sort)
//
// Each row is encoded as u16 ncols, then per value u8 kind, u8 null and
// the payload for non-NULL values. Interval values ride in I like every
// other kind the row engine stores there.

// RowRun is one spill run of encoded rows.
type RowRun struct {
	t    *tempFile
	rows int64
	buf  []byte
}

// NewRowRun creates a row run file under dir.
func NewRowRun(dir string) (*RowRun, error) {
	t, err := newTempFile(dir)
	if err != nil {
		return nil, err
	}
	return &RowRun{t: t}, nil
}

// Rows returns the number of rows written so far.
func (r *RowRun) Rows() int64 { return r.rows }

// Bytes returns the encoded size written so far.
func (r *RowRun) Bytes() int64 { return r.t.bytes }

// WriteRow appends one row.
func (r *RowRun) WriteRow(row types.Row) error {
	r.rows++
	r.buf = binary.LittleEndian.AppendUint16(r.buf[:0], uint16(len(row)))
	for _, v := range row {
		r.buf = append(r.buf, byte(v.K))
		if v.Null {
			r.buf = append(r.buf, 1)
			continue
		}
		r.buf = append(r.buf, 0)
		switch v.K {
		case types.KindBool:
			if v.B {
				r.buf = append(r.buf, 1)
			} else {
				r.buf = append(r.buf, 0)
			}
		case types.KindFloat:
			r.buf = binary.LittleEndian.AppendUint64(r.buf, math64(v.F))
		case types.KindString:
			r.buf = binary.LittleEndian.AppendUint32(r.buf, uint32(len(v.S)))
			r.buf = append(r.buf, v.S...)
		default: // int, date, interval, untyped nulls carry I
			r.buf = binary.LittleEndian.AppendUint64(r.buf, uint64(v.I))
		}
	}
	return r.t.write(r.buf)
}

// Finish flushes the run and prepares it for reading.
func (r *RowRun) Finish() error { return r.t.finish() }

// ReadRow reads the next row; it returns (nil, nil) at the end.
func (r *RowRun) ReadRow() (types.Row, error) {
	if err := fault.Failure(fault.PointSpillRead); err != nil {
		return nil, fmt.Errorf("spill: read: %w", err)
	}
	var b [8]byte
	if _, err := io.ReadFull(r.t.r, b[:2]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, err
	}
	ncols := int(binary.LittleEndian.Uint16(b[:2]))
	row := make(types.Row, ncols)
	for i := 0; i < ncols; i++ {
		if _, err := io.ReadFull(r.t.r, b[:2]); err != nil {
			return nil, err
		}
		v := types.Value{K: types.Kind(b[0])}
		if b[1] != 0 {
			v.Null = true
			row[i] = v
			continue
		}
		switch v.K {
		case types.KindBool:
			c, err := r.t.r.ReadByte()
			if err != nil {
				return nil, err
			}
			v.B = c != 0
		case types.KindFloat:
			if _, err := io.ReadFull(r.t.r, b[:8]); err != nil {
				return nil, err
			}
			v.F = unmath64(binary.LittleEndian.Uint64(b[:8]))
		case types.KindString:
			if _, err := io.ReadFull(r.t.r, b[:4]); err != nil {
				return nil, err
			}
			sb := make([]byte, binary.LittleEndian.Uint32(b[:4]))
			if _, err := io.ReadFull(r.t.r, sb); err != nil {
				return nil, err
			}
			v.S = string(sb)
		default:
			if _, err := io.ReadFull(r.t.r, b[:8]); err != nil {
				return nil, err
			}
			v.I = int64(binary.LittleEndian.Uint64(b[:8]))
		}
		row[i] = v
	}
	return row, nil
}

// Close releases the run's file.
func (r *RowRun) Close() error {
	if r == nil {
		return nil
	}
	return r.t.close()
}
