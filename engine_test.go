package perm_test

import (
	"strings"
	"testing"

	"perm"
)

// TestExecAffectedCounts checks DML row counts through the public API.
func TestExecAffectedCounts(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec("CREATE TABLE t (a int)")
	n, err := db.Exec("INSERT INTO t VALUES (1), (2), (3)")
	if err != nil || n != 3 {
		t.Fatalf("insert = %d, %v", n, err)
	}
	n, err = db.Exec("DELETE FROM t WHERE a >= 2")
	if err != nil || n != 2 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	// Multi-statement Exec returns the last DML count.
	n, err = db.Exec("INSERT INTO t VALUES (9); INSERT INTO t VALUES (10), (11)")
	if err != nil || n != 2 {
		t.Fatalf("multi-statement = %d, %v", n, err)
	}
}

// TestInsertColumnSubset checks column-list inserts and NULL defaults.
func TestInsertColumnSubset(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec("CREATE TABLE t (a int, b text, c float)")
	db.MustExec("INSERT INTO t (c, a) VALUES (1.5, 7)")
	res := db.MustQuery("SELECT a, b, c FROM t")
	row := res.Rows[0]
	if row[0].Int() != 7 || !row[1].IsNull() || row[2].Float() != 1.5 {
		t.Errorf("row = %v", row)
	}
	if _, err := db.Exec("INSERT INTO t (zzz) VALUES (1)"); err == nil {
		t.Error("unknown insert column should fail")
	}
	if _, err := db.Exec("INSERT INTO t (a) VALUES (1, 2)"); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Type coercion on insert: int into float column, string into date.
	db.MustExec("CREATE TABLE d (x date)")
	db.MustExec("INSERT INTO d VALUES ('1999-01-02')")
	res = db.MustQuery("SELECT x FROM d")
	if res.Rows[0][0].String() != "1999-01-02" {
		t.Errorf("date coercion = %s", res.Rows[0][0])
	}
}

// TestResultString checks the table renderer.
func TestResultString(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec("CREATE TABLE t (a int, name text); INSERT INTO t VALUES (1, 'long-value-here')")
	out := db.MustQuery("SELECT * FROM t").String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "a") || !strings.Contains(lines[0], "name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "long-value-here") {
		t.Errorf("row = %q", lines[2])
	}
}

// TestValueAccessors checks the public Value conversions.
func TestValueAccessors(t *testing.T) {
	db := perm.NewDatabase()
	res := db.MustQuery("SELECT 42, 2.5, 'x', TRUE, NULL, date '1970-01-11'")
	row := res.Rows[0]
	if row[0].Int() != 42 || row[0].Float() != 42 {
		t.Error("int accessors")
	}
	if row[1].Float() != 2.5 || row[1].Int() != 2 {
		t.Error("float accessors")
	}
	if row[2].String() != "x" {
		t.Error("string accessor")
	}
	if !row[3].Bool() {
		t.Error("bool accessor")
	}
	if !row[4].IsNull() || row[4].Int() != 0 || row[4].String() != "NULL" {
		t.Error("null accessors")
	}
	if row[5].Int() != 10 { // days since epoch
		t.Errorf("date accessor = %d", row[5].Int())
	}
}

// TestDeepNesting exercises deeply nested subqueries with provenance.
func TestDeepNesting(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec("CREATE TABLE base (x int); INSERT INTO base VALUES (1), (2), (3)")
	q := "SELECT x FROM base"
	for i := 0; i < 8; i++ {
		q = "SELECT x FROM (" + q + ") AS l" + string(rune('a'+i))
	}
	res, err := db.Query("SELECT PROVENANCE x FROM (" + q + ") AS top")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.NumProvColumns() != 1 {
		t.Fatalf("rows=%d prov=%d", len(res.Rows), res.NumProvColumns())
	}
}

// TestManyRelationProvenance checks the provenance schema of a wide join
// (all attributes of every relation appear, in range-table order).
func TestManyRelationProvenance(t *testing.T) {
	db := perm.NewDatabase()
	var from []string
	for _, n := range []string{"ta", "tb", "tc", "td", "te"} {
		db.MustExec("CREATE TABLE " + n + " (k int, v int)")
		db.MustExec("INSERT INTO " + n + " VALUES (1, 10)")
		from = append(from, n)
	}
	res, err := db.Query("SELECT PROVENANCE ta.v FROM " + strings.Join(from, ", ") +
		" WHERE ta.k = tb.k AND tb.k = tc.k AND tc.k = td.k AND td.k = te.k")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumProvColumns() != 10 {
		t.Fatalf("prov columns = %d, want 10", res.NumProvColumns())
	}
	wantOrder := []string{"prov_ta_k", "prov_ta_v", "prov_tb_k", "prov_tb_v",
		"prov_tc_k", "prov_tc_v", "prov_td_k", "prov_td_v", "prov_te_k", "prov_te_v"}
	got := res.Columns[1:]
	for i, w := range wantOrder {
		if got[i] != w {
			t.Fatalf("provenance order = %v, want %v", got, wantOrder)
		}
	}
}

// TestProvenanceViewStorageRoundTrip stores provenance eagerly and checks
// incremental reuse produces the same lineage as direct computation.
func TestProvenanceViewStorageRoundTrip(t *testing.T) {
	db := exampleDB(t)
	// Eager: store q+ as a table.
	db.MustExec(`SELECT PROVENANCE sname, count(*) AS cnt
		INTO stored_prov FROM sales GROUP BY sname`)
	// Incremental: compute provenance of a query over the stored result.
	res, err := db.Query(`
		SELECT PROVENANCE cnt * 2
		FROM stored_prov PROVENANCE (prov_sales_sname, prov_sales_itemid)`)
	if err != nil {
		t.Fatal(err)
	}
	// Direct: the equivalent one-shot provenance query.
	direct := db.MustQuery(`
		SELECT PROVENANCE cnt * 2 FROM
		(SELECT sname, count(*) AS cnt FROM sales GROUP BY sname) AS q`)
	if len(res.Rows) != len(direct.Rows) {
		t.Fatalf("incremental %d rows vs direct %d rows", len(res.Rows), len(direct.Rows))
	}
}

// TestErrorMessagesAreActionable spot-checks user-facing error text.
func TestErrorMessagesAreActionable(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec("CREATE TABLE t (a int)")
	_, err := db.Query("SELECT a FROM t WHERE a IN (SELECT b FROM t WHERE b = a)")
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("error = %v", err)
	}
	_, err = db.Query("SELEC a FROM t")
	if err == nil || !strings.Contains(err.Error(), "syntax error") {
		t.Errorf("error = %v", err)
	}
	_, err = db.Exec("CREATE TABLE t (a int)")
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("error = %v", err)
	}
}

// TestQueryRejectsNonQuery ensures Query refuses DDL.
func TestQueryRejectsNonQuery(t *testing.T) {
	db := perm.NewDatabase()
	if _, err := db.Query("CREATE TABLE t (a int)"); err == nil {
		t.Error("Query should reject DDL")
	}
}

// TestRewriteSQLIsExecutable: EXPLAIN REWRITE output must itself run and
// produce the same rows as the provenance query (the whole point of the
// approach: q+ is plain SQL).
func TestRewriteSQLIsExecutable(t *testing.T) {
	db := exampleDB(t)
	queries := []string{
		"SELECT PROVENANCE name FROM shop WHERE numempl > 5",
		"SELECT PROVENANCE sname, count(*) AS c FROM sales GROUP BY sname",
		"SELECT PROVENANCE name FROM shop UNION SELECT sname FROM sales",
	}
	for _, q := range queries {
		rewritten, err := db.RewriteSQL(q)
		if err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		direct := db.MustQuery(q)
		viaSQL, err := db.Query(rewritten)
		if err != nil {
			t.Fatalf("rewritten SQL does not execute: %v\n%s", err, rewritten)
		}
		if len(direct.Rows) != len(viaSQL.Rows) {
			t.Errorf("row count differs: direct %d vs rewritten-SQL %d for %q",
				len(direct.Rows), len(viaSQL.Rows), q)
		}
	}
}
