package perm_test

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"perm"
	"perm/internal/tpch"
)

// estimateRe matches the planner-estimate annotation EXPLAIN ANALYZE
// attaches to operators (est=%.0f rendering — no exponent).
var estimateRe = regexp.MustCompile(`est=([0-9]+)`)

// vectorizedOp reports whether an EXPLAIN operator label names a
// vectorized operator (including the batch→row adapter and the parallel
// coordinators, whose worker subtrees are rendered beneath them).
func vectorizedOp(op string) bool {
	switch {
	case strings.HasPrefix(op, "Vec"):
		return true
	case op == "BatchToRow" || op == "Exchange" || op == "ParallelAgg" || op == "ParallelSort":
		return true
	}
	return false
}

// assertVecEstimates runs a query under EXPLAIN ANALYZE and requires
// every vectorized operator in the report — including worker replica
// subtrees of parallel operators — to carry a nonzero cardinality
// estimate.
func assertVecEstimates(t *testing.T, db *perm.Database, query string) {
	t.Helper()
	report, err := db.ExplainAnalyzeSQL(query)
	if err != nil {
		t.Fatalf("EXPLAIN ANALYZE %s: %v", query, err)
	}
	checked := 0
	for _, line := range strings.Split(report, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		op, _, _ := strings.Cut(trimmed, " ")
		if !vectorizedOp(op) {
			continue
		}
		m := estimateRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("vectorized operator carries no estimate: %q in\n%s\nfor %s", trimmed, report, query)
		}
		if v, _ := strconv.Atoi(m[1]); v <= 0 {
			t.Fatalf("vectorized operator has zero estimate: %q in\n%s\nfor %s", trimmed, report, query)
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("no vectorized operators found in report for %s:\n%s", query, report)
	}
}

// TestEstimatesFig10Corpus is the cardinality-feedback acceptance gate:
// on the Fig. 10 TPC-H queries Q1/Q3/Q10/Q15 — normal and with
// provenance, serial and parallel, with and without a 4 MiB memory
// budget — every vectorized operator in the EXPLAIN ANALYZE output
// carries a nonzero planner estimate.
func TestEstimatesFig10Corpus(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H estimate corpus skipped with -short")
	}
	const sf = 0.002
	configs := []struct {
		name string
		opts perm.Options
	}{
		{"serial", perm.Options{MemoryLimit: -1}},
		{"parallel", perm.Options{MemoryLimit: -1, Parallelism: 2}},
		{"serial-4MiB", perm.Options{MemoryLimit: 4 << 20}},
		{"parallel-4MiB", perm.Options{MemoryLimit: 4 << 20, Parallelism: 2}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			opts := cfg.opts
			if opts.MemoryLimit > 0 {
				opts.SpillDir = t.TempDir()
			}
			db := perm.NewDatabaseWithOptions(opts)
			tpch.MustLoad(db, sf, 42)
			rng := tpch.NewRand(7)
			for _, n := range []int{1, 3, 10, 15} {
				q := tpch.MustQGen(n, rng)
				for _, s := range q.Setup {
					db.MustExec(s)
				}
				assertVecEstimates(t, db, q.Text)
				assertVecEstimates(t, db, q.Provenance().Text)
				for _, s := range q.Teardown {
					db.MustExec(s)
				}
			}
		})
	}
}

// TestEstimatesFeedStore pins the feedback loop end to end: an analyzed
// query lands in perm_stat_estimates with its worst q-error, queryable
// through ordinary SQL (and therefore composable with ORDER BY — the
// "find my worst misestimate" query from the README).
func TestEstimatesFeedStore(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec("CREATE TABLE r (a INT, b INT)")
	db.MustExec("INSERT INTO r VALUES (1,2),(1,4),(2,6),(3,8)")
	if _, _, err := db.QueryAnalyzed("SELECT a, COUNT(*) FROM r WHERE b > 0 GROUP BY a"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT fingerprint, query, max_qerr, worst_op FROM perm_stat_estimates ORDER BY max_qerr DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 estimate record, got %d", len(res.Rows))
	}
	row := res.Rows[0]
	if got := row[1].String(); !strings.Contains(got, "select a, count(*) from r") {
		t.Fatalf("unexpected normalized query %q", got)
	}
	qerr, err := strconv.ParseFloat(row[2].String(), 64)
	if err != nil || qerr < 1 {
		t.Fatalf("max_qerr %q not a q-error >= 1", row[2].String())
	}
	if row[3].String() == "" {
		t.Fatal("worst_op is empty")
	}
}
