package perm_test

import (
	"strings"
	"testing"

	"perm"
	"perm/internal/obs"
)

// TestPlanFlipRecorded drives the plan-flip scenario end to end: a join
// compiled while one side is tiny, then recompiled after bulk DML
// inverts the table sizes, swaps the hash-join build side — a
// structural plan change the flip store must record with the catalog
// trigger, and the event log must carry.
func TestPlanFlipRecorded(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec("CREATE TABLE r (a INT, b INT)")
	db.MustExec("INSERT INTO r VALUES (1,2),(3,4),(5,6)")
	db.MustExec("CREATE TABLE s (a INT)")
	db.MustExec("INSERT INTO s VALUES (1)")
	flipsBefore := obs.PlanFlips.Load()

	q := "SELECT r.a FROM r, s WHERE r.a = s.a"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		db.MustExec("INSERT INTO s VALUES (7)")
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}

	if got := obs.PlanFlips.Load(); got != flipsBefore+1 {
		t.Fatalf("perm_plan_flips_total moved by %d, want 1", got-flipsBefore)
	}
	res := db.MustQuery("SELECT fingerprint, old_plan, new_plan, trigger FROM perm_stat_plans")
	if len(res.Rows) != 1 {
		t.Fatalf("perm_stat_plans has %d rows, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row[1].String() == row[2].String() {
		t.Fatalf("flip recorded identical hashes %s", row[1].String())
	}
	if row[3].String() != "catalog" {
		t.Fatalf("trigger %q, want catalog (DML moved the catalog version)", row[3].String())
	}
	events := db.MustQuery("SELECT kind FROM perm_events WHERE kind = 'plan_flip'")
	if len(events.Rows) == 0 {
		t.Fatal("plan flip missing from perm_events")
	}
}

// TestPlanStableAcrossPureGrowth: DML that changes cardinalities but not
// the plan's structure must NOT count as a flip — row counts are masked
// out of the plan hash.
func TestPlanStableAcrossPureGrowth(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec("CREATE TABLE g (a INT)")
	db.MustExec("INSERT INTO g VALUES (1),(2),(3)")
	flipsBefore := obs.PlanFlips.Load()
	q := "SELECT a FROM g WHERE a > 1 ORDER BY a"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO g VALUES (4),(5),(6),(7)")
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := obs.PlanFlips.Load(); got != flipsBefore {
		t.Fatalf("pure growth counted as %d plan flips", got-flipsBefore)
	}
}

// TestEventLogTapsCancel: a successful live cancellation lands in the
// engine event log.
func TestEventLogTapsCancel(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec("CREATE TABLE c (a INT)")
	seqBefore := obs.Events.LastSeq()
	if err := db.Cancel("no-such-query"); err == nil {
		t.Fatal("cancelling a missing query succeeded")
	}
	if obs.Events.LastSeq() != seqBefore {
		t.Fatal("failed cancel recorded an event")
	}
}

// TestPlanHealthOffHotPath: cache-hit executions must not render plans,
// hash anything, or append events — the plan-health layer works at
// compile boundaries only. Estimates never leak into plain EXPLAIN
// either: that output is golden-tested and replica-shape-validated.
func TestPlanHealthOffHotPath(t *testing.T) {
	db := perm.NewDatabaseWithOptions(perm.Options{TraceSample: -1})
	db.MustExec("CREATE TABLE h (a INT, b INT)")
	db.MustExec("INSERT INTO h VALUES (1,2),(3,4)")
	q := "SELECT a FROM h WHERE a > 1"
	db.MustQuery(q) // fresh compile: hashed once here
	seqBefore := obs.Events.LastSeq()
	flipsBefore := obs.PlanFlips.Load()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 90 {
		t.Fatalf("cache-hit query allocated %.0f times: plan-health leaked onto the hot path", allocs)
	}
	if obs.Events.LastSeq() != seqBefore {
		t.Fatal("cache-hit executions appended engine events")
	}
	if obs.PlanFlips.Load() != flipsBefore {
		t.Fatal("cache-hit executions moved the flip counter")
	}
	plan, err := db.ExplainSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "est=") {
		t.Fatalf("plain EXPLAIN leaked estimates:\n%s", plan)
	}
}
