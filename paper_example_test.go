package perm_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"perm"
)

// exampleDB builds the shop/sales/items database of the paper's Fig. 2.
func exampleDB(t testing.TB) *perm.Database {
	t.Helper()
	db := perm.NewDatabase()
	db.MustExec(`
		CREATE TABLE shop (name text, numempl int);
		CREATE TABLE sales (sname text, itemid int);
		CREATE TABLE items (id int, price int);
		INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14);
		INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), ('Merdies', 2), ('Joba', 3), ('Joba', 3);
		INSERT INTO items VALUES (1, 100), (2, 10), (3, 25);
	`)
	return db
}

// rowsAsStrings renders result rows for order-insensitive comparison.
func rowsAsStrings(res *perm.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func expectRows(t *testing.T, res *perm.Result, want []string) {
	t.Helper()
	got := rowsAsStrings(res)
	sorted := append([]string(nil), want...)
	sort.Strings(sorted)
	if len(got) != len(sorted) {
		t.Fatalf("got %d rows, want %d\ngot:  %v\nwant: %v", len(got), len(sorted), got, sorted)
	}
	for i := range got {
		if got[i] != sorted[i] {
			t.Fatalf("row %d: got %q, want %q\nall got:  %v\nall want: %v", i, got[i], sorted[i], got, sorted)
		}
	}
}

// TestPaperExampleNormal checks the original query qex of §III-B.
func TestPaperExampleNormal(t *testing.T) {
	db := exampleDB(t)
	res, err := db.Query(`
		SELECT name, sum(price)
		FROM shop, sales, items
		WHERE name = sname AND itemid = id
		GROUP BY name`)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, res, []string{"Merdies|120", "Joba|50"})
}

// TestPaperExampleFig4 checks the exact provenance result relation of the
// paper's Fig. 4 (qex+), including tuple multiplicities.
func TestPaperExampleFig4(t *testing.T) {
	db := exampleDB(t)
	res, err := db.Query(`
		SELECT PROVENANCE name, sum(price)
		FROM shop, sales, items
		WHERE name = sname AND itemid = id
		GROUP BY name`)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{
		"name", "sum",
		"prov_shop_name", "prov_shop_numempl",
		"prov_sales_sname", "prov_sales_itemid",
		"prov_items_id", "prov_items_price",
	}
	if len(res.Columns) != len(wantCols) {
		t.Fatalf("got columns %v, want %v", res.Columns, wantCols)
	}
	for i, c := range wantCols {
		if res.Columns[i] != c {
			t.Errorf("column %d: got %q, want %q", i, res.Columns[i], c)
		}
	}
	// Provenance attributes are exactly the last six columns.
	for i := range res.Columns {
		wantProv := i >= 2
		if res.ProvColumns[i] != wantProv {
			t.Errorf("ProvColumns[%d] = %v, want %v", i, res.ProvColumns[i], wantProv)
		}
	}
	expectRows(t, res, []string{
		"Merdies|120|Merdies|3|Merdies|1|1|100",
		"Merdies|120|Merdies|3|Merdies|2|2|10",
		"Merdies|120|Merdies|3|Merdies|2|2|10",
		"Joba|50|Joba|14|Joba|3|3|25",
		"Joba|50|Joba|14|Joba|3|3|25",
	})
}

// TestPaperQueryOnProvenance checks the q1 example of §III-D: querying
// provenance and normal data together ("which items were sold by shops
// with total sales bigger than 100").
func TestPaperQueryOnProvenance(t *testing.T) {
	db := exampleDB(t)
	res, err := db.Query(`
		SELECT prov_items_id
		FROM (SELECT PROVENANCE name, sum(price) AS total
		      FROM shop, sales, items
		      WHERE name = sname AND itemid = id
		      GROUP BY name) AS p
		WHERE total > 100`)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, res, []string{"1", "2", "2"})
}

// TestPaperIncrementalProvenance reproduces the §IV-A3 example: a view
// storing provenance, reused through the PROVENANCE (attrs) annotation.
func TestPaperIncrementalProvenance(t *testing.T) {
	db := exampleDB(t)
	db.MustExec(`CREATE VIEW totalitemprice AS
		SELECT PROVENANCE sum(price) AS total FROM items`)
	res, err := db.Query(`
		SELECT PROVENANCE total * 10
		FROM totalitemprice PROVENANCE (prov_items_id, prov_items_price)`)
	if err != nil {
		t.Fatal(err)
	}
	// total = 135; each of the three item tuples is provenance.
	expectRows(t, res, []string{
		"1350|1|100",
		"1350|2|10",
		"1350|3|25",
	})
	if got := res.NumProvColumns(); got != 2 {
		t.Errorf("NumProvColumns = %d, want 2", got)
	}
}

// TestPaperBaseRelation reproduces the §IV-A4 example: BASERELATION stops
// provenance at a subquery boundary (rule R1 applies to the subquery).
func TestPaperBaseRelation(t *testing.T) {
	db := exampleDB(t)
	res, err := db.Query(`
		SELECT PROVENANCE total * 10
		FROM (SELECT sum(price) AS total FROM items) BASERELATION AS sub`)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, res, []string{"1350|135"})
	if res.Columns[1] != "prov_sub_total" {
		t.Errorf("provenance column named %q, want prov_sub_total", res.Columns[1])
	}
}

// TestPaperDisjunctiveSublink reproduces the §IV-E example: a sublink in a
// disjunctive condition contributes its entire input.
func TestPaperDisjunctiveSublink(t *testing.T) {
	db := exampleDB(t)
	res, err := db.Query(`
		SELECT PROVENANCE name
		FROM shop
		WHERE numempl < 10 OR name IN (SELECT sname FROM sales)`)
	if err != nil {
		t.Fatal(err)
	}
	// Both shops qualify; each original tuple carries every sales tuple
	// (5 of them) as provenance.
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10\n%s", len(res.Rows), res)
	}
	counts := map[string]int{}
	for _, row := range res.Rows {
		counts[row[0].String()]++
	}
	if counts["Merdies"] != 5 || counts["Joba"] != 5 {
		t.Errorf("per-shop provenance counts = %v, want 5 each", counts)
	}
}

func ExampleDatabase_rewrite() {
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE items (id int, price int)`)
	out, err := db.RewriteSQL(`SELECT PROVENANCE id FROM items`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(strings.Contains(out, "prov_items_id"))
	// Output: true
}
