package perm_test

import (
	"strings"
	"testing"

	"perm"
)

// ruleDB builds a tiny two-table database for the per-rule tests.
func ruleDB(t testing.TB) *perm.Database {
	t.Helper()
	db := perm.NewDatabase()
	db.MustExec(`
		CREATE TABLE r (a int, b text);
		INSERT INTO r VALUES (1, 'x'), (2, 'y'), (2, 'y'), (3, NULL);
		CREATE TABLE s (a int, c int);
		INSERT INTO s VALUES (1, 100), (2, 200), (4, 400);
	`)
	return db
}

// TestRuleR1BaseRelation: rule R1 duplicates the attributes of a base
// relation under provenance names.
func TestRuleR1BaseRelation(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE a, b FROM r")
	wantCols := []string{"a", "b", "prov_r_a", "prov_r_b"}
	for i, c := range wantCols {
		if res.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
		}
	}
	// Every tuple's provenance is itself.
	for _, row := range res.Rows {
		if row[0].String() != row[2].String() || row[1].String() != row[3].String() {
			t.Errorf("row %v: provenance must duplicate the tuple", row)
		}
	}
	if len(res.Rows) != 4 {
		t.Errorf("got %d rows, want 4 (bag semantics preserved)", len(res.Rows))
	}
}

// TestRuleR2Projection: projection passes provenance through (and keeps
// attributes projected away in the provenance columns).
func TestRuleR2Projection(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE b FROM r WHERE a = 1")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	// b, prov_r_a, prov_r_b — the projected-away a survives as provenance.
	if row[0].String() != "x" || row[1].Int() != 1 || row[2].String() != "x" {
		t.Errorf("row = %v", row)
	}
	// DISTINCT projection (set semantics Π^S): provenance may change
	// multiplicities of the original part but the distinct set of original
	// values must match.
	res = db.MustQuery("SELECT PROVENANCE DISTINCT b FROM r")
	seen := map[string]bool{}
	for _, r := range res.Rows {
		seen[r[0].String()] = true
	}
	if len(seen) != 3 { // x, y, NULL
		t.Errorf("distinct original values = %v", seen)
	}
}

// TestRuleR3Selection: selection applies unchanged to the rewritten input.
func TestRuleR3Selection(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE a FROM r WHERE b LIKE 'y%'")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[0].Int() != 2 || row[1].Int() != 2 || row[2].String() != "y" {
			t.Errorf("row = %v", row)
		}
	}
}

// TestRuleR4Join: a join's provenance concatenates both sides' P-lists in
// range-table order.
func TestRuleR4Join(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE r.a, c FROM r, s WHERE r.a = s.a")
	wantCols := []string{"a", "c", "prov_r_a", "prov_r_b", "prov_s_a", "prov_s_c"}
	if strings.Join(res.Columns, ",") != strings.Join(wantCols, ",") {
		t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
	}
	// a=2 matches twice in r → two provenance rows with identical s part.
	expectRows(t, res, []string{
		"1|100|1|x|1|100",
		"2|200|2|y|2|200",
		"2|200|2|y|2|200",
	})
}

// TestRuleR5Aggregation: aggregation joins back on grouping attributes;
// every input tuple of a group is provenance of its aggregate row.
func TestRuleR5Aggregation(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE b, count(*) FROM r GROUP BY b")
	expectRows(t, res, []string{
		"x|1|1|x",
		"y|2|2|y",
		"y|2|2|y",
		"NULL|1|3|NULL", // NULL group keeps its provenance (null-safe join)
	})
}

// TestRuleR5GlobalAggregation: without GROUP BY every input tuple
// contributes to the single result row.
func TestRuleR5GlobalAggregation(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE sum(a) FROM r")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (one per input tuple)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[0].Int() != 8 {
			t.Errorf("sum = %s, want 8", row[0])
		}
	}
}

// TestRuleR5EmptyAggregation: aggregation over an empty input yields one
// all-null original row but zero provenance rows (Fig. 11 footnote).
func TestRuleR5EmptyAggregation(t *testing.T) {
	db := ruleDB(t)
	db.MustExec("CREATE TABLE e (x int)")
	norm := db.MustQuery("SELECT sum(x) FROM e")
	if len(norm.Rows) != 1 || !norm.Rows[0][0].IsNull() {
		t.Fatalf("normal empty aggregation = %v", norm.Rows)
	}
	prov := db.MustQuery("SELECT PROVENANCE sum(x) FROM e")
	if len(prov.Rows) != 0 {
		t.Fatalf("provenance of empty aggregation = %d rows, want 0", len(prov.Rows))
	}
}

// TestRuleR6Union: each result tuple carries provenance from the side(s)
// it stems from; the other side's attributes are NULL.
func TestRuleR6Union(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE a FROM r UNION SELECT a FROM s")
	byVal := map[string][][]string{}
	for _, row := range res.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		byVal[parts[0]] = append(byVal[parts[0]], parts)
	}
	// a=4 only in s: left provenance NULL.
	rows4 := byVal["4"]
	if len(rows4) != 1 {
		t.Fatalf("a=4 rows = %v", rows4)
	}
	if rows4[0][1] != "NULL" || rows4[0][3] != "4" {
		t.Errorf("a=4 provenance = %v (want left NULL, right 4)", rows4[0])
	}
	// a=3 only in r: right provenance NULL.
	rows3 := byVal["3"]
	if len(rows3) != 1 || rows3[0][1] != "3" || rows3[0][3] != "NULL" {
		t.Errorf("a=3 provenance = %v", rows3)
	}
	// a=2: twice in r, once in s → union result tuple 2 has provenance
	// rows for both r duplicates and the s tuple.
	rows2 := byVal["2"]
	if len(rows2) < 2 {
		t.Errorf("a=2 provenance rows = %v", rows2)
	}
}

// TestRuleR7Intersection: both sides contribute to each result tuple.
func TestRuleR7Intersection(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE a FROM r INTERSECT SELECT a FROM s")
	vals := map[string]bool{}
	for _, row := range res.Rows {
		vals[row[0].String()] = true
		// intersection tuples must have non-NULL provenance on both sides
		if row[1].IsNull() || row[3].IsNull() {
			t.Errorf("intersection row %v lacks two-sided provenance", row)
		}
	}
	if !vals["1"] || !vals["2"] || len(vals) != 2 {
		t.Errorf("intersection originals = %v, want {1,2}", vals)
	}
}

// TestRuleR8SetDifference: for set semantics, ALL tuples of T2 are
// provenance of every result tuple (the condition is omitted).
func TestRuleR8SetDifference(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE a FROM r EXCEPT SELECT a FROM s")
	// result: {3}; provenance from s: all 3 tuples of s.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per s tuple)", len(res.Rows))
	}
	sVals := map[string]bool{}
	for _, row := range res.Rows {
		if row[0].Int() != 3 {
			t.Errorf("original = %s, want 3", row[0])
		}
		sVals[row[3].String()] = true
	}
	if len(sVals) != 3 {
		t.Errorf("s-side provenance keys = %v, want all of {1,2,4}", sVals)
	}
}

// TestRuleR9BagDifference: for bag semantics only T2 tuples different
// from the result tuple are attached.
func TestRuleR9BagDifference(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE a FROM r EXCEPT ALL SELECT a FROM s")
	// r bag: {1,2,2,3}; s bag: {1,2,4} → result {2,3}.
	byVal := map[string]map[string]bool{}
	for _, row := range res.Rows {
		v := row[0].String()
		if byVal[v] == nil {
			byVal[v] = map[string]bool{}
		}
		byVal[v][row[3].String()] = true
	}
	if len(byVal) != 2 || byVal["2"] == nil || byVal["3"] == nil {
		t.Fatalf("result values = %v, want {2,3}", byVal)
	}
	// For tuple 2: s tuples different from 2 are 1 and 4.
	if byVal["2"]["2"] {
		t.Errorf("tuple 2 must not have equal s-tuple 2 as provenance: %v", byVal["2"])
	}
	if !byVal["2"]["1"] || !byVal["2"]["4"] {
		t.Errorf("tuple 2 provenance must include s tuples 1 and 4: %v", byVal["2"])
	}
}

// TestRepeatedRelationNumbering: multiple references to a relation get
// numbered provenance attribute names (§IV-A1).
func TestRepeatedRelationNumbering(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE r1.a FROM r AS r1, r AS r2 WHERE r1.a = r2.a")
	joined := strings.Join(res.Columns, ",")
	if !strings.Contains(joined, "prov_r_a") || !strings.Contains(joined, "prov_r_2_a") {
		t.Errorf("repeated reference not numbered: %v", res.Columns)
	}
}

// TestNegatedSublinkProvenance: a NOT IN sublink attaches the tuples NOT
// fulfilling the condition (TPC-H Q16 behaviour).
func TestNegatedSublinkProvenance(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery(`SELECT PROVENANCE a FROM r WHERE a NOT IN (SELECT a FROM s WHERE c > 150)`)
	// s sub-result: {2, 4}; r tuples passing NOT IN: 1, 3.
	// Provenance per result tuple: sub tuples ≠ the test value.
	byVal := map[string][]string{}
	subCol := -1
	for i, c := range res.Columns {
		if strings.HasPrefix(c, "prov_s_a") {
			subCol = i
		}
	}
	if subCol < 0 {
		t.Fatalf("no sublink provenance column in %v", res.Columns)
	}
	for _, row := range res.Rows {
		byVal[row[0].String()] = append(byVal[row[0].String()], row[subCol].String())
	}
	if len(byVal["1"]) != 2 || len(byVal["3"]) != 2 {
		t.Errorf("each passing tuple should carry both sub tuples: %v", byVal)
	}
}

// TestScalarSublinkProvenance: a scalar sublink contributes its whole
// input.
func TestScalarSublinkProvenance(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE a FROM r WHERE a >= (SELECT min(a) FROM s)")
	// All 4 r tuples pass; each carries all 3 s tuples → 12 rows.
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
}

// TestFlattenSetOpsOption: the Fig. 6(3a) variant computes the same
// provenance as the default 3b variant on difference-free trees.
func TestFlattenSetOpsOption(t *testing.T) {
	q := "SELECT PROVENANCE a FROM r UNION SELECT a FROM s INTERSECT SELECT a FROM s"
	db1 := ruleDB(t)
	res1 := db1.MustQuery(q)

	db2 := perm.NewDatabaseWithOptions(perm.Options{FlattenSetOps: true})
	db2.MustExec(`
		CREATE TABLE r (a int, b text);
		INSERT INTO r VALUES (1, 'x'), (2, 'y'), (2, 'y'), (3, NULL);
		CREATE TABLE s (a int, c int);
		INSERT INTO s VALUES (1, 100), (2, 200), (4, 400);
	`)
	res2 := db2.MustQuery(q)

	set1 := map[string]int{}
	for _, row := range res1.Rows {
		set1[fingerprint(row, len(row))]++
	}
	set2 := map[string]int{}
	for _, row := range res2.Rows {
		set2[fingerprint(row, len(row))]++
	}
	if len(set1) != len(set2) {
		t.Fatalf("variant results differ: %d vs %d distinct rows\n3b: %v\n3a: %v",
			len(set1), len(set2), set1, set2)
	}
	for k := range set1 {
		if _, ok := set2[k]; !ok {
			t.Errorf("row %q missing from flattened variant", k)
		}
	}
}

// TestLimitProvenance: LIMIT queries attach provenance only to surviving
// rows.
func TestLimitProvenance(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery("SELECT PROVENANCE a FROM s ORDER BY a LIMIT 2")
	vals := map[string]bool{}
	for _, row := range res.Rows {
		vals[row[0].String()] = true
		if row[1].IsNull() {
			t.Errorf("limited row %v lacks provenance", row)
		}
	}
	if vals["4"] {
		t.Error("row cut by LIMIT must not appear")
	}
	if !vals["1"] || !vals["2"] {
		t.Errorf("surviving rows = %v, want {1,2}", vals)
	}
}

// TestNestedProvenanceSubquery: a PROVENANCE subquery's attributes are
// visible to (and pass through) the enclosing query.
func TestNestedProvenanceSubquery(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery(`
		SELECT prov_r_b FROM (SELECT PROVENANCE a FROM r) AS p WHERE prov_r_b IS NOT NULL`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

// TestProvenanceOfProvenance: rewriting a query over an already rewritten
// subquery treats the subquery's P-list as its provenance (incremental
// computation).
func TestProvenanceOfProvenance(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery(`
		SELECT PROVENANCE b FROM (SELECT PROVENANCE a, b FROM r) AS p WHERE a = 1`)
	// The outer rewrite must reuse prov_r_a/prov_r_b from the inner one,
	// not duplicate columns of p.
	joined := strings.Join(res.Columns, ",")
	if strings.Count(joined, "prov_r_a") != 1 {
		t.Errorf("columns = %v (provenance attributes duplicated?)", res.Columns)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "x" {
		t.Errorf("rows = %v", res.Rows)
	}
}

// TestExceptAllBlowup documents the §VI-acknowledged behaviour: chained
// set differences multiply provenance from the right operands.
func TestExceptAllBlowup(t *testing.T) {
	db := ruleDB(t)
	res := db.MustQuery(
		"SELECT PROVENANCE a FROM r EXCEPT ALL (SELECT a FROM s EXCEPT ALL SELECT a FROM s)")
	// The inner difference is empty, so the outer result is all of r's bag,
	// but every result row still carries the cross product of the inner
	// operands' provenance.
	if len(res.Rows) <= 4 {
		t.Errorf("rows = %d; expected provenance blow-up beyond the 4 originals", len(res.Rows))
	}
}
