package perm

import "perm/internal/types"

// Raw-value bridging for the permd wire protocol. These helpers expose
// the engine's internal typed values so the server and client can ship
// results without loss; they are module-internal plumbing (the types
// live under internal/) and not part of the stable embedded API.

// RawRows returns the result tuples as engine values.
func (r *Result) RawRows() [][]types.Value {
	out := make([][]types.Value, len(r.Rows))
	for i, row := range r.Rows {
		vr := make([]types.Value, len(row))
		for j, v := range row {
			vr[j] = v.v
		}
		out[i] = vr
	}
	return out
}

// NewRawResult builds a Result from engine values (the client side of
// the wire protocol).
func NewRawResult(cols []string, prov []bool, rows [][]types.Value) *Result {
	if prov == nil {
		prov = make([]bool, len(cols))
	}
	res := &Result{Columns: cols, ProvColumns: prov, Rows: make([][]Value, len(rows))}
	for i, row := range rows {
		vr := make([]Value, len(row))
		for j, v := range row {
			vr[j] = Value{v: v}
		}
		res.Rows[i] = vr
	}
	return res
}
