package perm_test

import (
	"fmt"
	"testing"

	"perm"
	"perm/internal/tpch"
)

// tpchDB loads a tiny TPC-H instance (shared across tests in this file).
func tpchDB(tb testing.TB, sf float64) *perm.Database {
	tb.Helper()
	db := perm.NewDatabase()
	tpch.MustLoad(db, sf, 42)
	return db
}

// runQuery executes a benchmark query instance with its setup/teardown.
func runQuery(tb testing.TB, db *perm.Database, q tpch.Query) *perm.Result {
	tb.Helper()
	for _, s := range q.Setup {
		if _, err := db.Exec(s); err != nil {
			tb.Fatalf("Q%d setup: %v", q.Number, err)
		}
	}
	res, err := db.Query(q.Text)
	if err != nil {
		tb.Fatalf("Q%d: %v\nquery:\n%s", q.Number, err, q.Text)
	}
	for _, s := range q.Teardown {
		if _, err := db.Exec(s); err != nil {
			tb.Fatalf("Q%d teardown: %v", q.Number, err)
		}
	}
	return res
}

// TestTPCHQueriesNormal runs every supported benchmark query without
// provenance on a tiny dataset.
func TestTPCHQueriesNormal(t *testing.T) {
	db := tpchDB(t, 0.001)
	rng := tpch.NewRand(7)
	for _, n := range tpch.SupportedQueries() {
		n := n
		t.Run(fmt.Sprintf("Q%d", n), func(t *testing.T) {
			q := tpch.MustQGen(n, rng)
			res := runQuery(t, db, q)
			if res.NumProvColumns() != 0 {
				t.Errorf("normal query reports %d provenance columns", res.NumProvColumns())
			}
		})
	}
}

// TestTPCHQueriesProvenance runs every supported benchmark query WITH
// provenance computation and checks structural invariants: provenance
// columns present, and the set of original-column projections of the
// provenance result equals the normal result (the §III-E theorem).
func TestTPCHQueriesProvenance(t *testing.T) {
	db := tpchDB(t, 0.001)
	rng := tpch.NewRand(7)
	for _, n := range tpch.SupportedQueries() {
		n := n
		t.Run(fmt.Sprintf("Q%d", n), func(t *testing.T) {
			if testing.Short() && (n == 9 || n == 11 || n == 16) {
				t.Skip("provenance blow-up query; skipped with -short")
			}
			q := tpch.MustQGen(n, rng)
			normRes := runQuery(t, db, q)
			provRes := runQuery(t, db, q.Provenance())
			if provRes.NumProvColumns() == 0 {
				t.Fatalf("provenance query has no provenance columns")
			}
			origWidth := len(normRes.Columns)
			if len(provRes.Columns) <= origWidth {
				t.Fatalf("provenance schema not extended: %d vs %d columns",
					len(provRes.Columns), origWidth)
			}
			// Theorem §III-E: Π_T(q+) = Π_T(q) as sets.
			normSet := map[string]bool{}
			for _, row := range normRes.Rows {
				normSet[fingerprint(row, origWidth)] = true
			}
			provSet := map[string]bool{}
			for _, row := range provRes.Rows {
				provSet[fingerprint(row, origWidth)] = true
			}
			// Aggregations over empty input are the single sanctioned
			// exception (Fig. 11 footnote): q yields one all-null row, q+
			// yields none.
			if len(provRes.Rows) == 0 && len(normRes.Rows) == 1 && allNull(normRes.Rows[0]) {
				return
			}
			for fp := range normSet {
				if !provSet[fp] {
					t.Errorf("original tuple %q missing from provenance result", fp)
				}
			}
			for fp := range provSet {
				if !normSet[fp] {
					t.Errorf("spurious tuple %q in provenance result", fp)
				}
			}
		})
	}
}

func fingerprint(row []perm.Value, width int) string {
	s := ""
	for i := 0; i < width && i < len(row); i++ {
		s += row[i].String() + "|"
	}
	return s
}

func allNull(row []perm.Value) bool {
	for _, v := range row {
		if !v.IsNull() {
			return false
		}
	}
	return true
}

// TestTPCHGeneratorDeterminism checks that the generator is reproducible
// and scales row counts.
func TestTPCHGeneratorDeterminism(t *testing.T) {
	d1 := tpch.Generate(0.001, 42)
	d2 := tpch.Generate(0.001, 42)
	for _, name := range tpch.TableNames() {
		if len(d1.Tables[name]) != len(d2.Tables[name]) {
			t.Fatalf("table %s: %d vs %d rows for same seed", name,
				len(d1.Tables[name]), len(d2.Tables[name]))
		}
	}
	for _, name := range []string{"supplier", "orders", "lineitem"} {
		for i := range d1.Tables[name] {
			a, b := d1.Tables[name][i], d2.Tables[name][i]
			if len(a) != len(b) {
				t.Fatalf("%s row %d: width mismatch", name, i)
			}
			for j := range a {
				if a[j].String() != b[j].String() {
					t.Fatalf("%s row %d col %d: %s vs %s", name, i, j, a[j], b[j])
				}
			}
		}
	}
	// Scaling.
	big := tpch.Generate(0.002, 42)
	if len(big.Tables["orders"]) <= len(d1.Tables["orders"]) {
		t.Errorf("orders did not scale: %d vs %d",
			len(big.Tables["orders"]), len(d1.Tables["orders"]))
	}
	if len(d1.Tables["region"]) != 5 || len(d1.Tables["nation"]) != 25 {
		t.Errorf("region/nation must be fixed size, got %d/%d",
			len(d1.Tables["region"]), len(d1.Tables["nation"]))
	}
}

// TestTPCHQGenVariation checks that qgen produces varying parameters.
func TestTPCHQGenVariation(t *testing.T) {
	rng := tpch.NewRand(1)
	texts := map[string]bool{}
	for i := 0; i < 10; i++ {
		q := tpch.MustQGen(6, rng)
		texts[q.Text] = true
	}
	if len(texts) < 2 {
		t.Errorf("qgen produced %d distinct Q6 instances out of 10", len(texts))
	}
	if _, err := tpch.QGen(2, rng); err == nil {
		t.Errorf("QGen(2) should fail: query 2 has a correlated sublink")
	}
}
