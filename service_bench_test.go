// Benchmarks for the concurrent query service layer: compiled-query
// cache speedup over cold compilation (BenchmarkPlanCache) and
// aggregate query throughput versus worker count over one shared
// Database (BenchmarkConcurrentThroughput). Both load a deliberately
// tiny TPC-H instance so compilation cost is visible next to execution.
package perm_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"perm"
	"perm/internal/synth"
	"perm/internal/tpch"
)

const serviceBenchSF = 0.0002

var (
	serviceBenchOnce sync.Once
	serviceBenchDB   *perm.Database
)

func sharedServiceBenchDB(b *testing.B) *perm.Database {
	b.Helper()
	serviceBenchOnce.Do(func() {
		serviceBenchDB = perm.NewDatabase()
		tpch.MustLoad(serviceBenchDB, serviceBenchSF, 42)
	})
	return serviceBenchDB
}

// serviceBenchQueries builds compilation-heavy provenance statements
// (deep SPJ nesting and aggregation chains, the Fig. 13/14 shapes).
func serviceBenchQueries(b *testing.B, db *perm.Database) []struct{ name, text string } {
	b.Helper()
	partCount, err := db.TableRowCount("part")
	if err != nil {
		b.Fatal(err)
	}
	return []struct{ name, text string }{
		{"spj6", injectProv(synth.SPJQuery(tpch.NewRand(6), 6, partCount))},
		{"aggchain8", injectProv(synth.AggChainQuery(8, partCount))},
	}
}

// BenchmarkPlanCache measures what the shared compiled-query cache
// saves: "cold" recompiles the statement on every call (cache disabled),
// "warm" serves the analyzed+rewritten+optimized tree from the cache and
// only plans and executes. Both run the query to completion, so the
// ratio understates the pure compile saving.
func BenchmarkPlanCache(b *testing.B) {
	db := sharedServiceBenchDB(b)
	cold := db.WithOptions(perm.Options{DisableQueryCache: true})
	for _, q := range serviceBenchQueries(b, db) {
		b.Run(q.name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cold.Query(q.text); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.name+"/warm", func(b *testing.B) {
			if _, err := db.Query(q.text); err != nil { // prime the cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q.text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentThroughput drives one shared Database from a pool
// of worker goroutines, all drawing from the same cached statement mix
// (the service steady state: many clients, hot cache). ns/op is the
// aggregate per-query latency — dividing the single-worker figure by an
// N-worker figure gives the QPS scaling factor for N workers.
func BenchmarkConcurrentThroughput(b *testing.B) {
	db := sharedServiceBenchDB(b)
	queries := serviceBenchQueries(b, db)
	corpus := make([]string, len(queries))
	for i, q := range queries {
		corpus[i] = q.text
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for _, q := range corpus { // prime the cache
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						if _, err := db.Query(corpus[i%int64(len(corpus))]); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
