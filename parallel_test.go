package perm_test

import (
	"fmt"
	"strings"
	"testing"

	"perm"
	"perm/internal/synth"
	"perm/internal/tpch"
)

// parallelPair returns databases over the same data at worker counts 1
// (the serial baseline — morsel dispatch never engages) and n, both with
// the given memory limit (-1 = unlimited).
func parallelPair(t *testing.T, n int, limit int64, setup func(*perm.Database)) (serial, parallel *perm.Database) {
	t.Helper()
	serial = perm.NewDatabaseWithOptions(perm.Options{Parallelism: 1, MemoryLimit: limit, SpillDir: t.TempDir()})
	parallel = perm.NewDatabaseWithOptions(perm.Options{Parallelism: n, MemoryLimit: limit, SpillDir: t.TempDir()})
	setup(serial)
	setup(parallel)
	return serial, parallel
}

// TestParallelTransparencyBig requires byte-identical output — same
// rows, same order — between serial and parallel plans across every
// parallel operator shape: exchange over scan/filter/project spines,
// partial aggregation (grouped, global, and the float SUM/AVG shapes
// that keep serial accumulation), parallel sort runs, and exchanges
// under distinct/set-op/join parents.
func TestParallelTransparencyBig(t *testing.T) {
	queries := []string{
		// Exchange over a filtered scan: order must replay morsel order.
		`SELECT a, b, s FROM big WHERE a % 3 = 0`,
		`SELECT a + b, s FROM big WHERE b < 3`,
		// Parallel sort: stable ties on b resolved by global input order.
		`SELECT a, b, s FROM big ORDER BY b, s`,
		`SELECT a FROM big ORDER BY a DESC LIMIT 10`,
		// Partial aggregation, grouped and global; min/max over strings.
		`SELECT a % 4096, count(*), sum(b), min(s), max(a) FROM big GROUP BY a % 4096`,
		`SELECT count(*), sum(a), min(s), max(s) FROM big`,
		// avg(b) is integer-argument AVG: exactly mergeable.
		`SELECT b, avg(a), count(*) FROM big GROUP BY b`,
		// Float SUM/AVG keeps serial accumulation (exchange below agg).
		`SELECT sum(a * 0.5), avg(b * 1.5) FROM big`,
		`SELECT b, sum(a * 0.25) FROM big GROUP BY b`,
		// Distinct and set operations over exchanged inputs.
		`SELECT DISTINCT a % 8192, b FROM big`,
		`SELECT a % 1000 FROM big INTERSECT ALL SELECT a % 1500 FROM big`,
		`SELECT a % 2000 FROM big UNION SELECT b FROM big`,
		// Joins on the probe spine: hash and the ordered self-join.
		`SELECT count(*), sum(x.a), sum(y.a) FROM big AS x, big AS y WHERE x.a = y.a AND x.b = 1`,
		`SELECT x.a, y.b FROM big AS x JOIN big AS y ON x.a = y.a WHERE x.a < 500 ORDER BY x.a, y.b`,
	}
	for _, workers := range []int{2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			serial, parallel := parallelPair(t, workers, -1, bigTable)
			for _, q := range queries {
				t.Run(q[:minInt(48, len(q))], func(t *testing.T) {
					assertIdenticalResult(t, serial, parallel, q)
				})
			}
			// Parallelism alone must never cause disk traffic: partial
			// tables that fit in memory merge in memory.
			if st := parallel.QueryStats(); st.BytesSpilled != 0 || st.SpillEvents != 0 {
				t.Fatalf("unlimited parallel database spilled: %+v", st)
			}
			if st := parallel.QueryStats(); st.MemoryInUse != 0 {
				t.Fatalf("parallel workers leaked reservations: %d bytes", st.MemoryInUse)
			}
		})
	}
}

// TestParallelSpillTransparency composes both machines: a 4 MiB budget
// shared by the workers of each query, so parallel execution spills —
// grace joins and partial aggregations under worker reservations — and
// must still be byte-identical to the serial plan under the same budget.
func TestParallelSpillTransparency(t *testing.T) {
	queries := []string{
		`SELECT a, b, s FROM big ORDER BY b, s`,
		`SELECT a % 4096, count(*), sum(b), min(s), max(a) FROM big GROUP BY a % 4096`,
		`SELECT DISTINCT a % 8192, b FROM big`,
		`SELECT a % 997, b FROM big EXCEPT ALL SELECT a % 997, b FROM big WHERE b > 3`,
		`SELECT count(*), sum(x.a), sum(y.a) FROM big AS x, big AS y WHERE x.a = y.a AND x.b = 1`,
		`SELECT x.a, y.b FROM big AS x JOIN big AS y ON x.a = y.a WHERE x.a < 500 ORDER BY x.a, y.b`,
	}
	for _, workers := range []int{2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			serial, parallel := parallelPair(t, workers, 4<<20, bigTable)
			for _, q := range queries {
				t.Run(q[:minInt(48, len(q))], func(t *testing.T) {
					assertIdenticalResult(t, serial, parallel, q)
				})
			}
			if st := parallel.QueryStats(); st.MemoryInUse != 0 {
				t.Fatalf("parallel workers leaked reservations: %d bytes", st.MemoryInUse)
			}
		})
	}
	// A genuinely tiny budget (64 KiB) forces every worker to spill; the
	// cross-worker disk merge must stay exact too.
	serial, parallel := parallelPair(t, 4, 64<<10, bigTable)
	for _, q := range queries {
		assertIdenticalResult(t, serial, parallel, q)
	}
	if st := parallel.QueryStats(); st.BytesSpilled == 0 {
		t.Fatalf("64 KiB parallel budget never spilled: %+v", st)
	}
}

// TestParallelTransparencyFig10 runs the Fig. 10 TPC-H provenance
// workload serial vs parallel, normal and rewritten.
func TestParallelTransparencyFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H parallel test skipped with -short")
	}
	const sf = 0.002
	for _, workers := range []int{2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			serial, parallel := parallelPair(t, workers, -1, func(db *perm.Database) {
				tpch.MustLoad(db, sf, 42)
			})
			rng := tpch.NewRand(7)
			for _, n := range []int{1, 3, 10, 15} {
				q := tpch.MustQGen(n, rng)
				for _, db := range []*perm.Database{serial, parallel} {
					for _, s := range q.Setup {
						db.MustExec(s)
					}
				}
				assertIdenticalResult(t, serial, parallel, q.Text)
				assertIdenticalResult(t, serial, parallel, q.Provenance().Text)
				for _, db := range []*perm.Database{serial, parallel} {
					for _, s := range q.Teardown {
						db.MustExec(s)
					}
				}
			}
			if st := parallel.QueryStats(); st.BytesSpilled != 0 {
				t.Fatalf("unlimited parallel database spilled: %+v", st)
			}
		})
	}
}

// TestParallelFig10UnderBudget reruns the Fig. 10 workload with both
// sides under the 4 MiB session budget of the spill suite: parallel +
// spill must compose without output drift.
func TestParallelFig10UnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H parallel spill test skipped with -short")
	}
	const sf = 0.002
	serial, parallel := parallelPair(t, 4, 4<<20, func(db *perm.Database) {
		tpch.MustLoad(db, sf, 42)
	})
	rng := tpch.NewRand(7)
	for _, n := range []int{1, 3, 10, 15} {
		q := tpch.MustQGen(n, rng)
		for _, db := range []*perm.Database{serial, parallel} {
			for _, s := range q.Setup {
				db.MustExec(s)
			}
		}
		assertIdenticalResult(t, serial, parallel, q.Text)
		assertIdenticalResult(t, serial, parallel, q.Provenance().Text)
		for _, db := range []*perm.Database{serial, parallel} {
			for _, s := range q.Teardown {
				db.MustExec(s)
			}
		}
	}
	if st := parallel.QueryStats(); st.MemoryInUse != 0 {
		t.Fatalf("parallel workers leaked reservations: %d bytes", st.MemoryInUse)
	}
}

// TestParallelSynthCorpora runs the generated §V-B workloads — SPJ
// chains, set-operation trees and aggregation chains — normal and with
// provenance, serial vs parallel.
func TestParallelSynthCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H parallel corpus skipped with -short")
	}
	const sf = 0.002
	serial, parallel := parallelPair(t, 4, -1, func(db *perm.Database) {
		tpch.MustLoad(db, sf, 42)
	})
	maxKey, err := serial.TableRowCount("part")
	if err != nil {
		t.Fatal(err)
	}
	var queries []string
	for seed := uint64(1); seed <= 4; seed++ {
		rng := tpch.NewRand(seed)
		queries = append(queries, synth.SPJQuery(rng, int(seed)+1, maxKey))
		queries = append(queries, synth.SetOpQuery(rng, int(seed)+1, maxKey))
		queries = append(queries, synth.AggChainQuery(int(seed), maxKey))
	}
	for _, q := range queries {
		assertIdenticalResult(t, serial, parallel, q)
		assertIdenticalResult(t, serial, parallel, injectProv(q))
	}
	if st := parallel.QueryStats(); st.BytesSpilled != 0 {
		t.Fatalf("unlimited parallel database spilled: %+v", st)
	}
}

// TestParallelExplainAnnotation pins the EXPLAIN surface: parallel
// operators report their worker count, and a serial handle over the same
// data never does.
func TestParallelExplainAnnotation(t *testing.T) {
	serial, parallel := parallelPair(t, 4, -1, bigTable)
	cases := []struct {
		query string
		want  string
	}{
		{`SELECT a FROM big WHERE a % 3 = 0`, `Exchange (workers=4)`},
		{`SELECT b, count(*) FROM big GROUP BY b`, `workers=4`},
		{`SELECT a FROM big ORDER BY a`, `workers=4`},
	}
	for _, c := range cases {
		plan, err := parallel.ExplainSQL(c.query)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, c.want) {
			t.Fatalf("parallel EXPLAIN of %q lacks %q:\n%s", c.query, c.want, plan)
		}
		splan, err := serial.ExplainSQL(c.query)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(splan, "workers=") {
			t.Fatalf("serial EXPLAIN of %q mentions workers:\n%s", c.query, splan)
		}
	}
}
