package perm_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"perm"
	"perm/internal/synth"
	"perm/internal/tpch"
)

// optPair builds two databases over the same DDL/DML script, one with the
// logical optimizer enabled (the default) and one without.
func optPair(t testing.TB, script string) (on, off *perm.Database) {
	t.Helper()
	on = perm.NewDatabase()
	off = perm.NewDatabaseWithOptions(perm.Options{DisableOptimizer: true})
	on.MustExec(script)
	off.MustExec(script)
	return on, off
}

// sortedRows renders a result as order-insensitive row strings.
func sortedRows(res *perm.Result) []string {
	rows := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return rows
}

// assertSameResult runs one query against both databases and requires
// identical columns, provenance flags and (sorted) rows.
func assertSameResult(t *testing.T, on, off *perm.Database, query string) {
	t.Helper()
	resOn, errOn := on.Query(query)
	resOff, errOff := off.Query(query)
	if (errOn == nil) != (errOff == nil) {
		t.Fatalf("error divergence for %q: on=%v off=%v", query, errOn, errOff)
	}
	if errOn != nil {
		return // both fail the same way; nothing to compare
	}
	if fmt.Sprint(resOn.Columns) != fmt.Sprint(resOff.Columns) {
		t.Fatalf("columns diverge for %q:\n on=%v\noff=%v", query, resOn.Columns, resOff.Columns)
	}
	if fmt.Sprint(resOn.ProvColumns) != fmt.Sprint(resOff.ProvColumns) {
		t.Fatalf("provenance flags diverge for %q:\n on=%v\noff=%v",
			query, resOn.ProvColumns, resOff.ProvColumns)
	}
	rowsOn, rowsOff := sortedRows(resOn), sortedRows(resOff)
	if len(rowsOn) != len(rowsOff) {
		t.Fatalf("row count diverges for %q: on=%d off=%d", query, len(rowsOn), len(rowsOff))
	}
	for i := range rowsOn {
		if rowsOn[i] != rowsOff[i] {
			t.Fatalf("row %d diverges for %q:\n on=%q\noff=%q", i, query, rowsOn[i], rowsOff[i])
		}
	}
}

const transparencyFixture = `
	CREATE TABLE nums (n int, label text);
	INSERT INTO nums VALUES (1, 'one'), (2, 'two'), (3, 'three'), (4, NULL), (NULL, 'nil');
	CREATE TABLE pairs (a int, b int);
	INSERT INTO pairs VALUES (1, 10), (2, 20), (2, 21), (5, 50);
	CREATE TABLE r (a int, b text);
	INSERT INTO r VALUES (1, 'x'), (2, 'y'), (2, 'y'), (3, NULL);
	CREATE TABLE s (a int, c int);
	INSERT INTO s VALUES (1, 100), (2, 200), (4, 400);
	CREATE TABLE empty_t (x int, y text);
	CREATE VIEW ryview AS SELECT a, b FROM r WHERE b LIKE 'y%';
	CREATE VIEW aggview AS SELECT b, count(*) AS cnt FROM r GROUP BY b;
`

// transparencyCorpus covers every query shape the optimizer rules touch,
// with and without provenance: nested SPJ, views, outer joins, set
// operations, aggregation, DISTINCT, sublinks, LIMIT.
var transparencyCorpus = []string{
	// Plain SPJ and nesting.
	`SELECT n, label FROM nums WHERE n < 3`,
	`SELECT t.n FROM (SELECT n, label FROM nums WHERE n > 1) AS t WHERE t.n < 4`,
	`SELECT x.n, y.b FROM (SELECT n FROM nums) AS x, (SELECT a, b FROM pairs) AS y WHERE x.n = y.a`,
	`SELECT z.n FROM (SELECT t.n FROM (SELECT n FROM nums WHERE n > 0) AS t) AS z`,
	`SELECT v.a, v.b FROM ryview AS v`,
	`SELECT * FROM aggview`,
	`SELECT cnt FROM aggview WHERE b = 'y'`,
	// Outer joins with subqueries on both sides.
	`SELECT nums.n, t.b FROM nums LEFT JOIN (SELECT a, b FROM pairs WHERE b > 15) AS t ON nums.n = t.a`,
	`SELECT t.b, nums.n FROM (SELECT a, b FROM pairs WHERE b > 15) AS t RIGHT JOIN nums ON nums.n = t.a`,
	`SELECT nums.n, t.c FROM nums LEFT JOIN (SELECT a, 1 AS c FROM pairs) AS t ON nums.n = t.a`,
	`SELECT a.n, b.n FROM (SELECT n FROM nums) AS a FULL JOIN (SELECT n FROM nums WHERE n > 2) AS b ON a.n = b.n`,
	// Set operations.
	`SELECT a FROM r UNION SELECT a FROM s`,
	`SELECT a FROM r UNION ALL SELECT a FROM s`,
	`SELECT u.a FROM (SELECT a FROM r UNION ALL SELECT a FROM s) AS u WHERE u.a > 1`,
	`SELECT u.a FROM (SELECT a FROM r INTERSECT SELECT a FROM s) AS u WHERE u.a < 3`,
	`SELECT u.a FROM (SELECT a FROM r EXCEPT SELECT a FROM s) AS u WHERE u.a > 0`,
	// Aggregation, DISTINCT, ordering, limits.
	`SELECT b, count(*) FROM r GROUP BY b`,
	`SELECT DISTINCT b, count(*) FROM r GROUP BY b`,
	`SELECT DISTINCT d.b FROM (SELECT DISTINCT a, b FROM r) AS d`,
	`SELECT g.n FROM (SELECT b, count(*) AS n, min(a) AS m FROM r GROUP BY b) AS g`,
	`SELECT n FROM nums ORDER BY n DESC LIMIT 2`,
	`SELECT t.n FROM (SELECT n FROM nums ORDER BY n LIMIT 3) AS t WHERE t.n > 1`,
	// Sublinks.
	`SELECT n FROM nums WHERE n IN (SELECT a FROM pairs)`,
	`SELECT n FROM nums WHERE n = (SELECT max(a) FROM pairs)`,
	`SELECT n FROM nums WHERE EXISTS (SELECT a FROM pairs WHERE b > 15)`,
	`SELECT label FROM nums WHERE n NOT IN (SELECT a FROM pairs)`,
	// Provenance variants of every shape (the rewriter's output is what
	// the optimizer was built for).
	`SELECT PROVENANCE n, label FROM nums WHERE n < 3`,
	`SELECT PROVENANCE t.n FROM (SELECT n, label FROM nums WHERE n > 1) AS t WHERE t.n < 4`,
	`SELECT PROVENANCE x.n, y.b FROM (SELECT n FROM nums) AS x, (SELECT a, b FROM pairs) AS y WHERE x.n = y.a`,
	`SELECT PROVENANCE v.a FROM ryview AS v`,
	`SELECT PROVENANCE b, count(*) AS c FROM r GROUP BY b`,
	`SELECT PROVENANCE a, sum(b) FROM pairs GROUP BY a HAVING sum(b) > 15`,
	`SELECT PROVENANCE DISTINCT b FROM r`,
	`SELECT PROVENANCE a FROM r UNION SELECT a FROM s`,
	`SELECT PROVENANCE a FROM r INTERSECT SELECT a FROM s`,
	`SELECT PROVENANCE a FROM r EXCEPT SELECT a FROM s`,
	`SELECT PROVENANCE n FROM nums WHERE n IN (SELECT a FROM pairs)`,
	`SELECT PROVENANCE n FROM nums WHERE n = (SELECT max(a) FROM pairs)`,
	`SELECT PROVENANCE n FROM nums ORDER BY n LIMIT 2`,
	`SELECT PROVENANCE cnt FROM aggview WHERE b = 'y'`,
	`SELECT PROVENANCE x FROM empty_t`,
	`SELECT PROVENANCE sub.c FROM (SELECT count(*) AS c FROM r BASERELATION) AS sub`,
}

// TestOptimizerTransparency runs the corpus with the optimizer on vs off
// and requires identical results — the optimizer must be invisible except
// for speed.
func TestOptimizerTransparency(t *testing.T) {
	on, off := optPair(t, transparencyFixture)
	for _, q := range transparencyCorpus {
		q := q
		t.Run(q[:minInt(40, len(q))], func(t *testing.T) {
			assertSameResult(t, on, off, q)
		})
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestOptimizerTransparencyTPCH is the property test over generated
// workloads: random SPJ trees, set-operation trees and aggregation chains
// (the paper's §V-B generators) plus the supported TPC-H queries, each
// run normal and with provenance against optimizer-on and -off databases.
func TestOptimizerTransparencyTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H property test skipped with -short")
	}
	const sf = 0.001
	on := perm.NewDatabase()
	off := perm.NewDatabaseWithOptions(perm.Options{DisableOptimizer: true})
	tpch.MustLoad(on, sf, 42)
	tpch.MustLoad(off, sf, 42)
	maxKey, err := on.TableRowCount("part")
	if err != nil {
		t.Fatal(err)
	}

	var queries []string
	for seed := uint64(1); seed <= 4; seed++ {
		rng := tpch.NewRand(seed)
		queries = append(queries, synth.SPJQuery(rng, int(seed)+1, maxKey))
		queries = append(queries, synth.SetOpQuery(rng, int(seed)+1, maxKey))
		queries = append(queries, synth.AggChainQuery(int(seed), maxKey))
	}
	for _, q := range queries {
		assertSameResult(t, on, off, q)
		assertSameResult(t, on, off, injectProv(q))
	}

	rng := tpch.NewRand(7)
	for _, n := range tpch.SupportedQueries() {
		q := tpch.MustQGen(n, rng)
		for _, db := range []*perm.Database{on, off} {
			for _, s := range q.Setup {
				if _, err := db.Exec(s); err != nil {
					t.Fatal(err)
				}
			}
		}
		assertSameResult(t, on, off, q.Text)
		assertSameResult(t, on, off, q.Provenance().Text)
		for _, db := range []*perm.Database{on, off} {
			for _, s := range q.Teardown {
				if _, err := db.Exec(s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestOptimizerGoldenExplain pins the flattened plans for rewritten
// queries: the optimizer must remove the per-subquery projection shells
// so rewritten SPJ provenance queries plan as a single join over base
// scans.
func TestOptimizerGoldenExplain(t *testing.T) {
	// Pin the memory budget off: these tests golden-match plan shapes,
	// and a PERM_MEMORY_LIMIT environment override would add spill=on
	// annotations (covered by the dedicated spill tests).
	on := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1})
	off := perm.NewDatabaseWithOptions(perm.Options{DisableOptimizer: true, MemoryLimit: -1})
	on.MustExec(transparencyFixture)
	off.MustExec(transparencyFixture)

	cases := []struct {
		name  string
		query string
		want  string
	}{
		{
			name:  "flattened-spj-provenance",
			query: `SELECT PROVENANCE x.n, y.b FROM (SELECT n FROM nums) AS x, (SELECT a, b FROM pairs) AS y WHERE x.n = y.a`,
			want: strings.Join([]string{
				"BatchToRow",
				"  VecProject (6 cols)",
				"    VecHashJoin (inner, 1 keys, RuntimeFilter)",
				"      VecScan (5 rows, RuntimeFilter)",
				"      VecScan (4 rows)",
				"",
			}, "\n"),
		},
		{
			// The join-back puts the (smaller) aggregate on the build side
			// and publishes a runtime filter onto the probe scan — the
			// provenance shape PR 4's runtime filters target.
			name:  "flattened-aggregation-provenance",
			query: `SELECT PROVENANCE b, count(*) AS c FROM r GROUP BY b`,
			want: strings.Join([]string{
				"BatchToRow",
				"  VecProject (4 cols)",
				"    VecHashJoin (inner, 1 keys, RuntimeFilter)",
				"      VecScan (4 rows, RuntimeFilter)",
				"      VecProject (2 cols)",
				"        VecHashAggregate (1 groups, 1 aggs)",
				"          VecScan (4 rows)",
				"",
			}, "\n"),
		},
		{
			name:  "view-unfolding-flattened",
			query: `SELECT v.a FROM ryview AS v WHERE v.a > 1`,
			want: strings.Join([]string{
				"BatchToRow",
				"  VecProject (1 cols)",
				"    VecFilter",
				"      VecScan (4 rows)",
				"",
			}, "\n"),
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, err := on.ExplainSQL(c.query)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("optimized plan mismatch for %q:\ngot:\n%swant:\n%s", c.query, got, c.want)
			}
			// The same query without the optimizer must keep the nested
			// shells — guards against the baseline silently changing.
			raw, err := off.ExplainSQL(c.query)
			if err != nil {
				t.Fatal(err)
			}
			if raw == got {
				t.Errorf("optimizer-off plan unexpectedly identical for %q:\n%s", c.query, raw)
			}
		})
	}
}

// TestOptimizedRewriteSQLRoundTrips: the deparsed form of an optimized
// tree must itself parse, run, and produce the provenance result.
func TestOptimizedRewriteSQLRoundTrips(t *testing.T) {
	on, _ := optPair(t, transparencyFixture)
	queries := []string{
		`SELECT PROVENANCE t.n FROM (SELECT n, label FROM nums WHERE n > 1) AS t WHERE t.n < 4`,
		`SELECT PROVENANCE x.n, y.b FROM (SELECT n FROM nums) AS x, (SELECT a, b FROM pairs) AS y WHERE x.n = y.a`,
		`SELECT PROVENANCE b, count(*) AS c FROM r GROUP BY b`,
		`SELECT PROVENANCE a FROM r UNION SELECT a FROM s`,
		`SELECT PROVENANCE v.a FROM ryview AS v`,
	}
	for _, q := range queries {
		rewritten, err := on.RewriteSQL(q)
		if err != nil {
			t.Fatalf("rewrite %q: %v", q, err)
		}
		direct := on.MustQuery(q)
		via, err := on.Query(rewritten)
		if err != nil {
			t.Fatalf("optimized q+ does not execute: %v\n%s", err, rewritten)
		}
		dr, vr := sortedRows(direct), sortedRows(via)
		if len(dr) != len(vr) {
			t.Fatalf("row count: direct %d vs deparsed %d for %q\n%s", len(dr), len(vr), q, rewritten)
		}
		for i := range dr {
			if dr[i] != vr[i] {
				t.Fatalf("row %d: %q vs %q for %q", i, dr[i], vr[i], q)
			}
		}
	}
}
