package perm_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"perm"
	"perm/internal/session"
)

// introspectDB returns a database with tracing on for every query and a
// small populated table.
func introspectDB(t *testing.T, opts perm.Options) *perm.Database {
	t.Helper()
	db := perm.NewDatabaseWithOptions(opts)
	db.MustExec(`CREATE TABLE shop (name text, numempl int)`)
	db.MustExec(`CREATE TABLE sales (sname text, itemid int)`)
	db.MustExec(`INSERT INTO shop VALUES ('Merdies', 3), ('Edeka', 7)`)
	db.MustExec(`INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), ('Edeka', 1)`)
	return db
}

// TestStatActivitySelfView: a query over perm_stat_activity observes at
// least itself (registered before planning, like pg_stat_activity).
func TestStatActivitySelfView(t *testing.T) {
	db := introspectDB(t, perm.Options{})
	res, err := db.Query(`SELECT query_id, session_id, query FROM perm_stat_activity`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("perm_stat_activity rows = %d, want 1 (the observing query itself)", len(res.Rows))
	}
	row := res.Rows[0]
	if !strings.HasPrefix(row[0].String(), "q") {
		t.Fatalf("query_id = %q, want q<N>", row[0].String())
	}
	if !strings.Contains(row[2].String(), "perm_stat_activity") {
		t.Fatalf("query column = %q, want the observing statement", row[2].String())
	}
	if got := fmt.Sprint(db.SessionID()); row[1].String() != got {
		t.Fatalf("session_id = %s, want %s", row[1].String(), got)
	}
	// Once the query finishes it must deregister: a later snapshot again
	// sees only its own observer.
	res, err = db.Query(`SELECT query_id FROM perm_stat_activity`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("activity registry leaked: %d rows", len(res.Rows))
	}
}

func TestStatStatementsAggregates(t *testing.T) {
	db := introspectDB(t, perm.Options{})
	for i := 0; i < 3; i++ {
		// Different literals, same fingerprint: stat_statements must
		// aggregate by normalized shape.
		db.MustQuery(fmt.Sprintf(`SELECT name FROM shop WHERE numempl > %d`, i))
	}
	if _, err := db.Query(`SELECT broken FROM shop`); err == nil {
		t.Fatal("expected analyzer error")
	}
	res, err := db.Query(`
		SELECT query, calls, errors, rows_emitted
		FROM perm_stat_statements
		WHERE query = 'select name from shop where numempl > ?'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 aggregated entry, got %d", len(res.Rows))
	}
	if calls := res.Rows[0][1].String(); calls != "3" {
		t.Fatalf("calls = %s, want 3", calls)
	}
	res, err = db.Query(`
		SELECT errors FROM perm_stat_statements
		WHERE query = 'select broken from shop'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "1" {
		t.Fatalf("failed statement not accounted: %v", res.Rows)
	}
	// Latency columns are well-formed: mean/p50/p99 are non-negative and
	// p50 <= p99 <= some sane bound of max.
	res = db.MustQuery(`
		SELECT mean_ms, p50_ms, p99_ms, max_ms FROM perm_stat_statements
		WHERE query = 'select name from shop where numempl > ?'`)
	var v [4]float64
	for i := range v {
		if _, err := fmt.Sscanf(res.Rows[0][i].String(), "%g", &v[i]); err != nil {
			t.Fatalf("latency column %d = %q: %v", i, res.Rows[0][i].String(), err)
		}
		if v[i] < 0 {
			t.Fatalf("latency column %d negative: %g", i, v[i])
		}
	}
	if v[1] > v[2] {
		t.Fatalf("p50 %g > p99 %g", v[1], v[2])
	}
}

func TestPermTracesSampledSpans(t *testing.T) {
	db := introspectDB(t, perm.Options{TraceSample: 1})
	db.MustQuery(`SELECT s.name, count(*) FROM shop s, sales sa WHERE s.name = sa.sname GROUP BY s.name`)
	res := db.MustQuery(`
		SELECT span, count(*) FROM perm_traces
		WHERE depth = 0 GROUP BY span ORDER BY span`)
	phases := map[string]bool{}
	for _, row := range res.Rows {
		phases[row[0].String()] = true
	}
	for _, want := range []string{"parse", "rewrite", "optimize", "plan", "execute"} {
		if !phases[want] {
			t.Fatalf("missing phase span %q in perm_traces (have %v)", want, phases)
		}
	}
	// Operator spans (depth >= 1) from the instrumented execution of the
	// join/aggregate query.
	res = db.MustQuery(`SELECT span FROM perm_traces WHERE depth >= 1`)
	ops := map[string]bool{}
	for _, row := range res.Rows {
		ops[row[0].String()] = true
	}
	if len(ops) == 0 {
		t.Fatal("no operator spans recorded for a sampled query")
	}
	found := false
	for op := range ops {
		if strings.Contains(op, "Scan") {
			found = true
		}
	}
	if !found {
		t.Fatalf("operator spans %v include no scan", ops)
	}
}

func TestTracingOffRecordsNothing(t *testing.T) {
	db := introspectDB(t, perm.Options{TraceSample: -1})
	db.MustQuery(`SELECT name FROM shop`)
	res := db.MustQuery(`SELECT count(*) FROM perm_traces`)
	if got := res.Rows[0][0].String(); got != "0" {
		t.Fatalf("perm_traces holds %s traces with sampling off, want 0", got)
	}
}

func TestPermMetricsView(t *testing.T) {
	db := introspectDB(t, perm.Options{})
	res := db.MustQuery(`SELECT labels, value FROM perm_metrics WHERE name = 'perm_build_info'`)
	if len(res.Rows) != 1 {
		t.Fatalf("perm_build_info rows = %d, want 1", len(res.Rows))
	}
	if labels := res.Rows[0][0].String(); !strings.Contains(labels, "version=") {
		t.Fatalf("perm_build_info labels = %q, want a version label", labels)
	}
	if v := res.Rows[0][1].String(); v != "1" {
		t.Fatalf("perm_build_info value = %s, want 1", v)
	}
	// The view composes with the engine like any relation: aggregate it.
	res = db.MustQuery(`SELECT count(*) FROM perm_metrics WHERE name = 'perm_qcache_lookups_total'`)
	if got := res.Rows[0][0].String(); got != "4" {
		t.Fatalf("qcache lookup outcome families = %s, want 4 (hit/miss/invalidation/eviction)", got)
	}
}

// TestSystemViewsCompose joins a system view against user data and runs
// a provenance rewrite over one — system tables are ordinary relations
// to the analyzer, rewriter and planner.
func TestSystemViewsCompose(t *testing.T) {
	db := introspectDB(t, perm.Options{})
	db.MustQuery(`SELECT name FROM shop`)
	res, err := db.Query(`
		SELECT s.query, sh.name
		FROM perm_stat_statements s, shop sh
		WHERE s.query = 'select name from shop' AND sh.numempl > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("join over perm_stat_statements rows = %d, want 1", len(res.Rows))
	}
	res, err = db.Query(`SELECT PROVENANCE query_id FROM perm_stat_activity`)
	if err != nil {
		t.Fatalf("provenance over a system view: %v", err)
	}
	if len(res.Columns) < 2 {
		t.Fatalf("provenance query returned no provenance columns: %v", res.Columns)
	}
}

func TestSystemTableNamespaceReserved(t *testing.T) {
	db := perm.NewDatabase()
	if _, err := db.Exec(`CREATE TABLE perm_traces (a int)`); err == nil ||
		!strings.Contains(err.Error(), "system table") {
		t.Fatalf("CREATE TABLE over a system table: err = %v", err)
	}
	if _, err := db.Exec(`CREATE VIEW perm_stat_activity AS SELECT 1`); err == nil {
		t.Fatal("CREATE VIEW over a system table must fail")
	}
}

func TestCancelUnknownQuery(t *testing.T) {
	db := perm.NewDatabase()
	if err := db.Cancel("q999"); err == nil || !strings.Contains(err.Error(), "not running") {
		t.Fatalf("Cancel of unknown query: err = %v", err)
	}
	if _, err := db.Exec(`CANCEL q999`); err == nil || !strings.Contains(err.Error(), "not running") {
		t.Fatalf("CANCEL statement for unknown query: err = %v", err)
	}
	if _, err := db.Exec(`CANCEL 'q999'`); err == nil || !strings.Contains(err.Error(), "not running") {
		t.Fatalf("CANCEL with quoted ID: err = %v", err)
	}
}

// cancelTarget launches query on db in a goroutine, waits until it shows
// up in perm_stat_activity (observed through observer, a handle sharing
// the engine), cancels it, and returns the query error.
func cancelTarget(t *testing.T, db, observer *perm.Database, query string, viaSQL bool) error {
	t.Helper()
	errc := make(chan error, 1)
	go func() {
		_, err := db.Query(query)
		errc <- err
	}()
	deadline := time.Now().Add(20 * time.Second)
	var id string
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("target query never appeared in perm_stat_activity")
		}
		res, err := observer.Query(`SELECT query_id, query FROM perm_stat_activity WHERE phase = 'execute'`)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			if row[1].String() == query {
				id = row[0].String()
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if viaSQL {
		if _, err := observer.Exec("CANCEL " + id); err != nil {
			t.Fatalf("CANCEL %s: %v", id, err)
		}
	} else if err := observer.Cancel(id); err != nil {
		t.Fatalf("Cancel(%s): %v", id, err)
	}
	select {
	case err := <-errc:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled query did not return")
		return nil
	}
}

// TestCancelLongQuery cancels a multi-second query mid-flight in serial,
// parallel and spilling configurations: the issuer gets a clean
// cancellation error promptly, and other sessions are unaffected.
func TestCancelLongQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running cancellation test")
	}
	// A 65k x 65k cross join: billions of output rows, far beyond what
	// completes before the cancel lands.
	const longQuery = `SELECT count(*) FROM big a, big b WHERE a.b + b.b > 1`
	cases := []struct {
		name   string
		opts   perm.Options
		query  string
		viaSQL bool
	}{
		{"serial", perm.Options{Parallelism: -1}, longQuery, false},
		{"parallel", perm.Options{Parallelism: 4}, longQuery, true},
		{"spilling", perm.Options{Parallelism: -1, MemoryLimit: 64 << 10},
			`SELECT a.a, b.a FROM big a, big b ORDER BY a.a - b.a`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			leakCheck(t)
			opts := tc.opts
			opts.SpillDir = t.TempDir()
			db := perm.NewDatabaseWithOptions(opts)
			bigTable(db)
			observer := db.WithOptions(db.Opts())
			start := time.Now()
			err := cancelTarget(t, db, observer, tc.query, tc.viaSQL)
			if err == nil {
				t.Fatal("cancelled query returned no error")
			}
			if !strings.Contains(err.Error(), "cancelled") {
				t.Fatalf("cancelled query error = %v, want a cancellation error", err)
			}
			if waited := time.Since(start); waited > 15*time.Second {
				t.Fatalf("cancellation took %v, want prompt termination", waited)
			}
			// The engine is fully usable afterwards, and other sessions
			// were never affected.
			res := observer.MustQuery(`SELECT count(*) FROM big`)
			if got := res.Rows[0][0].String(); got != "65536" {
				t.Fatalf("post-cancel query = %s, want 65536", got)
			}
			res = observer.MustQuery(`SELECT count(*) FROM perm_stat_activity`)
			if got := res.Rows[0][0].String(); got != "1" {
				t.Fatalf("activity registry rows after cancel = %s, want 1", got)
			}
		})
	}
}

// TestTracedExecutionIdentical: sampling a query must never change its
// results — traced and untraced databases produce byte-identical output
// across serial, parallel and spilling execution.
func TestTracedExecutionIdentical(t *testing.T) {
	queries := []string{
		`SELECT name, numempl FROM shop ORDER BY name`,
		`SELECT s.name, count(*) FROM shop s, sales sa WHERE s.name = sa.sname GROUP BY s.name ORDER BY 1`,
		`SELECT PROVENANCE name FROM shop ORDER BY name`,
		`SELECT DISTINCT itemid FROM sales ORDER BY itemid`,
		`SELECT name FROM shop UNION SELECT sname FROM sales ORDER BY 1`,
	}
	configs := []struct {
		name string
		opts perm.Options
	}{
		{"serial", perm.Options{Parallelism: -1}},
		{"parallel", perm.Options{Parallelism: 4}},
		{"spilling", perm.Options{Parallelism: -1, MemoryLimit: 64 << 10}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			traced, untraced := cfg.opts, cfg.opts
			traced.TraceSample = 1
			untraced.TraceSample = -1
			traced.SpillDir = t.TempDir()
			untraced.SpillDir = t.TempDir()
			a := introspectDB(t, traced)
			b := introspectDB(t, untraced)
			for _, q := range queries {
				assertIdenticalResult(t, a, b, q)
			}
			// Every query on the traced side actually produced a trace.
			res := a.MustQuery(`SELECT count(*) FROM perm_traces WHERE depth = 0 AND span = 'execute'`)
			var n int
			fmt.Sscanf(res.Rows[0][0].String(), "%d", &n)
			if n < len(queries) {
				t.Fatalf("traced side recorded %d executed traces, want >= %d", n, len(queries))
			}
		})
	}
}

func TestSessionSetTraceSample(t *testing.T) {
	db := perm.NewDatabaseWithOptions(perm.Options{TraceSample: -1})
	db.MustExec(`CREATE TABLE t (a int); INSERT INTO t VALUES (1)`)
	sess := session.New(db)
	if _, err := sess.Run(`SET trace_sample = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(`SELECT a FROM t`); err != nil {
		t.Fatal(err)
	}
	// One row per span: count the execute phase span to count traces.
	res, err := sess.Query(`SELECT count(*) FROM perm_traces WHERE query = 'SELECT a FROM t' AND span = 'execute'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].String(); got != "1" {
		t.Fatalf("traces for session-sampled query = %s, want 1", got)
	}
	// SET must not change the session's identity in the activity view.
	before := sess.DB().SessionID()
	if _, err := sess.Run(`SET trace_sample = off`); err != nil {
		t.Fatal(err)
	}
	if after := sess.DB().SessionID(); after != before {
		t.Fatalf("SET changed session ID %d -> %d", before, after)
	}
	if err := sess.SetOption("trace_sample", "-3"); err == nil {
		t.Fatal("negative trace_sample must be rejected")
	}
	sess.Close()
}

// allocBudgetPerUntracedQuery bounds the allocations of one cached,
// untraced point query end to end. The lifecycle bookkeeping this
// budget guards (query ID, activity registration, statement stats) must
// stay a small per-query constant: the tracing off-path is one atomic
// add and must never allocate, so a regression here means introspection
// leaked onto the hot path.
const allocBudgetPerUntracedQuery = 90

func TestUntracedQueryAllocFlat(t *testing.T) {
	db := perm.NewDatabaseWithOptions(perm.Options{TraceSample: -1})
	db.MustExec(`CREATE TABLE t (a int, b int)`)
	db.MustExec(`INSERT INTO t VALUES (1,2),(3,4),(5,6)`)
	q := `SELECT a, b FROM t WHERE a > 1`
	db.MustQuery(q) // warm the compiled-query cache
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > allocBudgetPerUntracedQuery {
		t.Fatalf("untraced cached query allocated %.0f times (budget %d): introspection overhead regressed",
			allocs, allocBudgetPerUntracedQuery)
	}
}

// TestPreparedStatementsTracked: EXECUTE of a prepared statement shows
// up in statement statistics like a plain query.
func TestPreparedStatementsTracked(t *testing.T) {
	db := introspectDB(t, perm.Options{})
	p, err := db.Prepare(`SELECT name FROM shop WHERE numempl > 4`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
	}
	res := db.MustQuery(`
		SELECT calls FROM perm_stat_statements
		WHERE query = 'select name from shop where numempl > ?'`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "2" {
		t.Fatalf("prepared runs not accounted: %v", res.Rows)
	}
}
